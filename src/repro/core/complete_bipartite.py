"""Closed-form SimRank scores on complete bipartite graphs.

The paper's appendices derive exact per-iteration SimRank scores for the
complete bipartite graphs that often appear as click-graph fragments:

* Theorem A.1 -- on ``K_{2,2}`` with decay factors ``C1, C2``,

  .. math::

     sim^{(k)}(A, B) = \\frac{C_2}{2}
       \\sum_{i=1}^{k} \\frac{1}{2^{i-1}} C_1^{\\lfloor i/2 \\rfloor} C_2^{\\lceil (i-1)/2 \\rceil}

* Theorem A.2 -- on ``K_{1,2}`` the score of the two ads is ``C_2`` for all
  ``k > 0`` (the single shared query immediately certifies them).
* Theorem B.1 -- the evidence-based score on ``K_{2,2}`` multiplies the plain
  score by the two-common-neighbour evidence factor.

These closed forms are used as oracles in the test suite and to regenerate
Tables 3 and 4.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.config import EvidenceKind
from repro.core.evidence import evidence_score

__all__ = [
    "simrank_k22_score",
    "simrank_k12_score",
    "evidence_simrank_k22_score",
    "evidence_simrank_k12_score",
    "simrank_km2_scores",
]


def simrank_k22_score(iterations: int, c1: float = 0.8, c2: float = 0.8) -> float:
    """Theorem A.1(i): plain SimRank similarity of the two ads of ``K_{2,2}``.

    By the symmetry of the complete bipartite graph the same formula (with
    ``C1`` and ``C2`` swapped) gives the similarity of the two queries.

    Note: the theorem statement in the paper writes the ``C2`` exponent as
    ``ceil((i-1)/2)``, but its own iteration-by-iteration expansion (and a
    direct computation) give ``floor((i-1)/2)``; we follow the expansion.
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    total = 0.0
    for i in range(1, iterations + 1):
        total += (1.0 / 2 ** (i - 1)) * c1 ** (i // 2) * c2 ** ((i - 1) // 2)
    return (c2 / 2.0) * total


def simrank_k12_score(iterations: int, c2: float = 0.8) -> float:
    """Theorem A.2: plain SimRank similarity of the two ads of ``K_{1,2}``.

    The two ads share their single neighbouring query, so their similarity is
    ``C2`` after every iteration ``k > 0``.
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    return 0.0 if iterations == 0 else c2


def evidence_simrank_k22_score(
    iterations: int,
    c1: float = 0.8,
    c2: float = 0.8,
    kind: EvidenceKind = EvidenceKind.GEOMETRIC,
) -> float:
    """Theorem B.1: evidence-based SimRank score of the two ads of ``K_{2,2}``.

    The pair has two common neighbours, so the plain score is multiplied by
    ``evidence(2) = 1/2 + 1/4 = 0.75`` under the geometric definition.
    """
    return evidence_score(2, kind) * simrank_k22_score(iterations, c1, c2)


def evidence_simrank_k12_score(
    iterations: int,
    c2: float = 0.8,
    kind: EvidenceKind = EvidenceKind.GEOMETRIC,
) -> float:
    """Evidence-based SimRank score of the two ads of ``K_{1,2}``.

    One common neighbour gives evidence ``1/2``, so the score is ``C2 / 2``
    under the geometric definition (0.4 for ``C2 = 0.8``, matching Table 4).
    """
    return evidence_score(1, kind) * simrank_k12_score(iterations, c2)


def simrank_km2_scores(
    m: int, iterations: int, c1: float = 0.8, c2: float = 0.8
) -> Dict[int, Tuple[float, float]]:
    """Per-iteration SimRank scores of the two ads of ``K_{m,2}``.

    Returns ``{k: (ad_pair_score, query_pair_score)}`` for ``k`` from 1 to
    ``iterations``, computed by direct Jacobi iteration on the complete
    bipartite structure (all query pairs have the same score by symmetry, as
    do all ad pairs).  Used to check the ordering claims of Theorems 6.2 and
    7.1 for general ``m``.
    """
    if m < 1:
        raise ValueError("m must be at least 1")
    if iterations < 1:
        raise ValueError("iterations must be at least 1")
    ad_score = 0.0  # similarity of the two ads
    query_score = 0.0  # similarity of any two distinct queries (m >= 2)
    history: Dict[int, Tuple[float, float]] = {}
    for k in range(1, iterations + 1):
        # Each ad is connected to all m queries: the double sum over E(A) x E(B)
        # has m diagonal terms (score 1) and m*(m-1) off-diagonal query pairs.
        new_ad = (c2 / (m * m)) * (m * 1.0 + m * (m - 1) * query_score)
        if m >= 2:
            # Each query is connected to both ads: 2 diagonal terms and 2
            # off-diagonal ad pairs.
            new_query = (c1 / 4.0) * (2.0 + 2.0 * ad_score)
        else:
            new_query = 0.0
        ad_score, query_score = new_ad, new_query
        history[k] = (ad_score, query_score)
    return history
