"""Bipartite SimRank (paper Section 4, following Jeh & Widom).

The similarity of two queries is the (decayed) average similarity of the ads
they were clicked on, and vice versa:

.. math::

   s(q, q') = \\frac{C_1}{N(q) N(q')} \\sum_{i \\in E(q)} \\sum_{j \\in E(q')} s(i, j)

   s(a, a') = \\frac{C_2}{N(a) N(a')} \\sum_{i \\in E(a)} \\sum_{j \\in E(a')} s(i, j)

with ``s(v, v) = 1``.  The fixpoint is computed by Jacobi iteration starting
from the identity, exactly as in the paper's appendix, so the per-iteration
scores reproduce Tables 3 and 4.

This is the *reference* implementation: it stores scores per node pair and
restricts work to pairs inside the same connected component.  For larger
graphs use :class:`repro.core.simrank_matrix.MatrixSimrank`, which computes
the same fixpoint with dense linear algebra.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.config import SimrankConfig
from repro.core.scores import SimilarityScores
from repro.core.similarity_base import QuerySimilarityMethod
from repro.core.warm_start import seed_pair_scores
from repro.graph.click_graph import ClickGraph
from repro.graph.components import connected_components

__all__ = ["BipartiteSimrank", "SimrankResult"]

Node = Hashable
Pair = Tuple[Node, Node]


@dataclass
class SimrankResult:
    """Query- and ad-side similarity scores plus the iteration trace."""

    query_scores: SimilarityScores
    ad_scores: SimilarityScores
    iterations_run: int
    converged: bool = False
    #: Per-iteration snapshots of the query-side scores (index 0 = after the
    #: first iteration).  Only populated when history tracking is requested.
    query_history: List[SimilarityScores] = field(default_factory=list)
    ad_history: List[SimilarityScores] = field(default_factory=list)


class BipartiteSimrank(QuerySimilarityMethod):
    """Plain bipartite SimRank over a click graph."""

    name = "simrank"

    def __init__(
        self,
        config: Optional[SimrankConfig] = None,
        track_history: bool = False,
        max_pairs: int = 2_000_000,
    ) -> None:
        super().__init__()
        self.config = config or SimrankConfig()
        self.track_history = track_history
        self.max_pairs = max_pairs
        self._result: Optional[SimrankResult] = None

    # -------------------------------------------------------------- fit path

    def _compute_query_scores(self, graph: ClickGraph) -> SimilarityScores:
        self._result = self._run(graph)
        return self._result.query_scores

    def restore(self, scores, graph=None) -> "BipartiteSimrank":
        """Adopt precomputed query scores; the full result object is fit-only."""
        super().restore(scores, graph)
        self._result = None
        return self

    @property
    def result(self) -> SimrankResult:
        """Full result (both sides and the iteration trace)."""
        self._require_fitted()
        return self._require_fit_extra(self._result, "SimrankResult")

    def ad_similarity(self, first: Node, second: Node) -> float:
        """Similarity of two ads under the same fixpoint."""
        self._require_fitted()
        return self._require_fit_extra(self._result, "ad-side scores").ad_scores.score(
            first, second
        )

    # ------------------------------------------------------------- iteration

    def _run(self, graph: ClickGraph) -> SimrankResult:
        query_pairs, ad_pairs = _component_pairs(graph, self.max_pairs)
        query_neighbors = {query: list(graph.ads_of(query)) for query in graph.queries()}
        ad_neighbors = {ad: list(graph.queries_of(ad)) for ad in graph.ads()}

        seed = self._warm_start_scores
        if seed is not None:
            # Warm start: the query side takes the previous scores and the
            # ad side is derived by one application of its update, so both
            # sides of the Jacobi alternation start near the fixpoint (a
            # zero ad side would wash the query seed out on step one).
            sim_q = seed_pair_scores(seed, query_pairs)
            sim_a = self._update_side(
                pairs=ad_pairs,
                neighbors=ad_neighbors,
                other_scores=sim_q,
                decay=self.config.c2,
            )
        else:
            sim_q: Dict[Pair, float] = {pair: 0.0 for pair in query_pairs}
            sim_a: Dict[Pair, float] = {pair: 0.0 for pair in ad_pairs}
        history_q: List[SimilarityScores] = []
        history_a: List[SimilarityScores] = []
        converged = False
        iterations_run = 0

        for _ in range(self.config.iterations):
            iterations_run += 1
            new_q = self._update_side(
                pairs=query_pairs,
                neighbors=query_neighbors,
                other_scores=sim_a,
                decay=self.config.c1,
            )
            new_a = self._update_side(
                pairs=ad_pairs,
                neighbors=ad_neighbors,
                other_scores=sim_q,
                decay=self.config.c2,
            )
            delta = _max_delta(sim_q, new_q)
            delta = max(delta, _max_delta(sim_a, new_a))
            sim_q, sim_a = new_q, new_a
            if self.track_history:
                history_q.append(_to_scores(sim_q))
                history_a.append(_to_scores(sim_a))
            if self.config.tolerance > 0 and delta < self.config.tolerance:
                converged = True
                break

        return SimrankResult(
            query_scores=_to_scores(sim_q),
            ad_scores=_to_scores(sim_a),
            iterations_run=iterations_run,
            converged=converged,
            query_history=history_q,
            ad_history=history_a,
        )

    @staticmethod
    def _update_side(
        pairs: List[Pair],
        neighbors: Dict[Node, List[Node]],
        other_scores: Dict[Pair, float],
        decay: float,
    ) -> Dict[Pair, float]:
        """One Jacobi update of one side from the other side's previous scores."""
        updated: Dict[Pair, float] = {}
        for first, second in pairs:
            first_neighbors = neighbors[first]
            second_neighbors = neighbors[second]
            if not first_neighbors or not second_neighbors:
                updated[(first, second)] = 0.0
                continue
            total = 0.0
            for i in first_neighbors:
                for j in second_neighbors:
                    if i == j:
                        total += 1.0
                    else:
                        total += other_scores.get((i, j), other_scores.get((j, i), 0.0))
            updated[(first, second)] = (
                decay * total / (len(first_neighbors) * len(second_neighbors))
            )
        return updated


# ---------------------------------------------------------------------- utils


def _component_pairs(graph: ClickGraph, max_pairs: int) -> Tuple[List[Pair], List[Pair]]:
    """All unordered same-side node pairs within each connected component.

    Pairs in different components can never become similar, so restricting to
    components is exact.  Raises ``ValueError`` when the pair count would
    exceed ``max_pairs`` (use the matrix implementation in that case).
    """
    query_pairs: List[Pair] = []
    ad_pairs: List[Pair] = []
    total = 0
    for queries, ads in connected_components(graph):
        query_list = sorted(queries, key=repr)
        ad_list = sorted(ads, key=repr)
        total += len(query_list) * (len(query_list) - 1) // 2
        total += len(ad_list) * (len(ad_list) - 1) // 2
        if total > max_pairs:
            raise ValueError(
                f"SimRank pair count exceeds max_pairs={max_pairs}; "
                "use MatrixSimrank for graphs of this size"
            )
        for i, first in enumerate(query_list):
            for second in query_list[i + 1:]:
                query_pairs.append((first, second))
        for i, first in enumerate(ad_list):
            for second in ad_list[i + 1:]:
                ad_pairs.append((first, second))
    return query_pairs, ad_pairs


def _max_delta(old: Dict[Pair, float], new: Dict[Pair, float]) -> float:
    """Largest absolute per-pair change between two iterations."""
    if not new:
        return 0.0
    return max(abs(new[pair] - old.get(pair, 0.0)) for pair in new)


def _to_scores(values: Dict[Pair, float]) -> SimilarityScores:
    scores = SimilarityScores()
    for (first, second), value in values.items():
        if value != 0.0:
            scores.set(first, second, value)
    return scores
