"""The sponsored-search front-end: turning similarity scores into rewrites.

Section 9.3 of the paper describes the rewrite-generation procedure used in
the evaluation: run a similarity method over the click graph, record the top
100 rewrites per query, deduplicate them with stemming, remove rewrites that
are not in the bid-term list (queries that never received a bid are unlikely
to have active bids now), and keep at most five rewrites per query.  The
number of rewrites that survive is the method's *depth* for that query.

:class:`QueryRewriter` implements exactly that pipeline on top of any
:class:`~repro.core.similarity_base.QuerySimilarityMethod`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, List, Optional, Sequence, Set

from repro.core.similarity_base import QuerySimilarityMethod
from repro.graph.click_graph import ClickGraph
from repro.text.normalize import query_signature

__all__ = ["Rewrite", "RewriteList", "QueryRewriter"]

Node = Hashable


@dataclass(frozen=True)
class Rewrite:
    """One rewrite proposed for a query."""

    query: Node
    rewrite: Node
    score: float
    rank: int

    def as_pair(self) -> tuple:
        return (self.query, self.rewrite)


@dataclass
class RewriteList:
    """All surviving rewrites of one query, in rank order."""

    query: Node
    rewrites: List[Rewrite]

    @property
    def depth(self) -> int:
        """Number of rewrites that survived filtering (paper: the method's depth)."""
        return len(self.rewrites)

    @property
    def covered(self) -> bool:
        """Whether at least one rewrite survived (query-coverage numerator)."""
        return bool(self.rewrites)

    def top(self, k: int) -> List[Rewrite]:
        return self.rewrites[:k]

    def candidates(self) -> List[Node]:
        return [rewrite.rewrite for rewrite in self.rewrites]


class QueryRewriter:
    """Generate filtered, ranked query rewrites from a similarity method."""

    def __init__(
        self,
        method: QuerySimilarityMethod,
        bid_terms: Optional[Set[str]] = None,
        max_rewrites: int = 5,
        candidate_pool: int = 100,
        min_score: float = 0.0,
        deduplicate: bool = True,
    ) -> None:
        """
        Parameters
        ----------
        method:
            A fitted (or to-be-fitted) similarity method.
        bid_terms:
            The set of queries that received at least one bid during the
            click-graph collection period.  When provided, rewrites outside
            this set are filtered out (bid-term filtering).  ``None`` disables
            the filter.
        max_rewrites:
            Maximum rewrites kept per query (the paper uses 5).
        candidate_pool:
            How many raw candidates to consider before filtering (the paper
            records the top 100).
        min_score:
            Candidates with a similarity score at or below this value are
            never proposed.
        deduplicate:
            Apply stemming-based duplicate removal (drop rewrites whose
            stemmed signature equals the query's or an earlier rewrite's).
        """
        if max_rewrites < 1:
            raise ValueError("max_rewrites must be at least 1")
        if candidate_pool < max_rewrites:
            raise ValueError("candidate_pool must be at least max_rewrites")
        self.method = method
        self.bid_terms = bid_terms
        self.max_rewrites = max_rewrites
        self.candidate_pool = candidate_pool
        self.min_score = min_score
        self.deduplicate = deduplicate

    # ------------------------------------------------------------------- fit

    def fit(self, graph: ClickGraph) -> "QueryRewriter":
        """Fit the underlying similarity method on a click graph."""
        self.method.fit(graph)
        return self

    # -------------------------------------------------------------- rewrites

    def rewrites_for(self, query: Node) -> RewriteList:
        """The surviving rewrites of one query, best first."""
        candidates = self.method.top_rewrites(
            query, k=self.candidate_pool, minimum=self.min_score
        )
        accepted: List[Rewrite] = []
        seen_signatures = {query_signature(query)} if self.deduplicate else set()
        for candidate, score in candidates:
            if len(accepted) >= self.max_rewrites:
                break
            if self.bid_terms is not None and str(candidate) not in self.bid_terms:
                continue
            if self.deduplicate:
                signature = query_signature(candidate)
                if signature in seen_signatures:
                    continue
                seen_signatures.add(signature)
            accepted.append(
                Rewrite(query=query, rewrite=candidate, score=score, rank=len(accepted) + 1)
            )
        return RewriteList(query=query, rewrites=accepted)

    def rewrite_all(self, queries: Iterable[Node]) -> List[RewriteList]:
        """Rewrites for a whole evaluation query sample."""
        return [self.rewrites_for(query) for query in queries]

    # ----------------------------------------------------------------- stats

    def coverage(self, queries: Sequence[Node]) -> float:
        """Fraction of the given queries with at least one surviving rewrite."""
        if not queries:
            return 0.0
        covered = sum(1 for query in queries if self.rewrites_for(query).covered)
        return covered / len(queries)

    def depth_histogram(self, queries: Sequence[Node]) -> List[int]:
        """Count of queries by surviving-rewrite depth (index = depth)."""
        histogram = [0] * (self.max_rewrites + 1)
        for query in queries:
            histogram[self.rewrites_for(query).depth] += 1
        return histogram
