"""The sponsored-search front-end: turning similarity scores into rewrites.

Section 9.3 of the paper describes the rewrite-generation procedure used in
the evaluation: run a similarity method over the click graph, record the top
100 rewrites per query, deduplicate them with stemming, remove rewrites that
are not in the bid-term list (queries that never received a bid are unlikely
to have active bids now), and keep at most five rewrites per query.  The
number of rewrites that survive is the method's *depth* for that query.

:class:`QueryRewriter` implements exactly that pipeline on top of any
:class:`~repro.core.similarity_base.QuerySimilarityMethod`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.similarity_base import QuerySimilarityMethod
from repro.graph.click_graph import ClickGraph
from repro.text.normalize import query_signature

__all__ = ["Rewrite", "RewriteList", "CandidateDecision", "QueryRewriter"]

Node = Hashable


@dataclass(frozen=True)
class Rewrite:
    """One rewrite proposed for a query."""

    query: Node
    rewrite: Node
    score: float
    rank: int

    def as_pair(self) -> tuple:
        return (self.query, self.rewrite)


@dataclass
class RewriteList:
    """All surviving rewrites of one query, in rank order."""

    query: Node
    rewrites: List[Rewrite]

    @property
    def depth(self) -> int:
        """Number of rewrites that survived filtering (paper: the method's depth)."""
        return len(self.rewrites)

    @property
    def covered(self) -> bool:
        """Whether at least one rewrite survived (query-coverage numerator)."""
        return bool(self.rewrites)

    def top(self, k: int) -> List[Rewrite]:
        return self.rewrites[:k]

    def candidates(self) -> List[Node]:
        return [rewrite.rewrite for rewrite in self.rewrites]

    def as_tuples(self) -> List[Tuple[Node, Node, int, float]]:
        """``(query, rewrite, rank, score)`` rows -- the exact serving profile.

        This is the single definition of serving equivalence used by the
        cross-backend tests and the snapshot benchmark gate: two engines
        serve equivalently iff their batches flatten to equal tuple lists.
        """
        return [
            (self.query, rewrite.rewrite, rewrite.rank, rewrite.score)
            for rewrite in self.rewrites
        ]


@dataclass(frozen=True)
class CandidateDecision:
    """What the filter pipeline did with one raw candidate.

    ``fate`` is ``"accepted"`` or the name of the filter that dropped the
    candidate: ``"not_in_bid_terms"``, ``"duplicate"`` or
    ``"beyond_max_rewrites"``.  Candidates scoring at or below ``min_score``
    never reach the pipeline and therefore never appear in a trace.
    """

    candidate: Node
    score: float
    fate: str
    rank: Optional[int] = None

    @property
    def accepted(self) -> bool:
        return self.fate == "accepted"


class QueryRewriter:
    """Generate filtered, ranked query rewrites from a similarity method."""

    def __init__(
        self,
        method: QuerySimilarityMethod,
        bid_terms: Optional[Set[str]] = None,
        max_rewrites: int = 5,
        candidate_pool: int = 100,
        min_score: float = 0.0,
        deduplicate: bool = True,
    ) -> None:
        """
        Parameters
        ----------
        method:
            A fitted (or to-be-fitted) similarity method.
        bid_terms:
            The set of queries that received at least one bid during the
            click-graph collection period.  When provided, rewrites outside
            this set are filtered out (bid-term filtering).  ``None`` disables
            the filter.
        max_rewrites:
            Maximum rewrites kept per query (the paper uses 5).
        candidate_pool:
            How many raw candidates to consider before filtering (the paper
            records the top 100).
        min_score:
            Candidates with a similarity score at or below this value are
            never proposed.
        deduplicate:
            Apply stemming-based duplicate removal (drop rewrites whose
            stemmed signature equals the query's or an earlier rewrite's).

        Notes
        -----
        Rewrite lists are memoized per query, so repeated ``rewrites_for``
        calls (and the ``coverage`` / ``depth_histogram`` statistics, which
        share the memo) run the similarity top-k at most once per query.
        Changing any filtering attribute after serving has started requires a
        :meth:`clear_cache` call; refitting clears the memo automatically.
        """
        if max_rewrites < 1:
            raise ValueError("max_rewrites must be at least 1")
        if candidate_pool < max_rewrites:
            raise ValueError("candidate_pool must be at least max_rewrites")
        self.method = method
        self.bid_terms = bid_terms
        self.max_rewrites = max_rewrites
        self.candidate_pool = candidate_pool
        self.min_score = min_score
        self.deduplicate = deduplicate
        self._cache: Dict[Node, RewriteList] = {}
        self._bid_signatures: Optional[Set[Tuple[str, ...]]] = None
        self._bid_signature_source: Optional[Set[str]] = None

    # ------------------------------------------------------------------- fit

    def fit(self, graph: ClickGraph) -> "QueryRewriter":
        """Fit the underlying similarity method on a click graph."""
        self.method.fit(graph)
        self.clear_cache()
        return self

    def clear_cache(self) -> None:
        """Drop memoized rewrite lists (needed after mutating filter knobs)."""
        self._cache.clear()
        # Recompute the bid-term signatures too: an identity check alone would
        # miss in-place mutations of the bid_terms set.
        self._bid_signatures = None
        self._bid_signature_source = None

    # -------------------------------------------------------------- rewrites

    def rewrites_for(self, query: Node) -> RewriteList:
        """The surviving rewrites of one query, best first (memoized)."""
        cached = self._cache.get(query)
        if cached is not None:
            return cached
        result = self.compute_rewrites(query)
        self._cache[query] = result
        return result

    def compute_rewrites(self, query: Node) -> RewriteList:
        """The surviving rewrites of one query, computed afresh (never memoized).

        :class:`~repro.api.engine.RewriteEngine` owns a bounded LRU serving
        cache and must remain the *only* cache layer -- a second unbounded
        memo here would defeat the bound -- so the engine serves its misses
        through this entry point, while :meth:`rewrites_for` keeps memoizing
        for direct rewriter users (``coverage`` / ``depth_histogram``).
        """
        result, _ = self._generate(query, collect_decisions=False)
        return result

    def explain_candidates(self, query: Node) -> List[CandidateDecision]:
        """The fate of every raw candidate in the filter pipeline, best first."""
        _, decisions = self._generate(query, collect_decisions=True)
        return decisions

    def _bid_term_signatures(self) -> Optional[Set[Tuple[str, ...]]]:
        """Stemmed signatures of the bid terms, recomputed when the set changes.

        Bid terms and candidates are both normalized with
        :func:`~repro.text.normalize.query_signature` so casing, word-order
        and stemming variants of a bid term ("Digital Cameras" vs "digital
        camera") are not spuriously filtered out.
        """
        if self.bid_terms is None:
            return None
        if self._bid_signatures is None or self._bid_signature_source is not self.bid_terms:
            self._bid_signatures = {query_signature(term) for term in self.bid_terms}
            self._bid_signature_source = self.bid_terms
        return self._bid_signatures

    def _generate(
        self, query: Node, collect_decisions: bool
    ) -> Tuple[RewriteList, List[CandidateDecision]]:
        """Run the Section 9.3 filter pipeline over the raw candidate pool."""
        candidates = self.method.top_rewrites(
            query, k=self.candidate_pool, minimum=self.min_score
        )
        bid_signatures = self._bid_term_signatures()
        accepted: List[Rewrite] = []
        decisions: List[CandidateDecision] = []
        seen_signatures = {query_signature(query)} if self.deduplicate else set()
        for candidate, score in candidates:
            signature = query_signature(candidate)
            if len(accepted) >= self.max_rewrites:
                fate = "beyond_max_rewrites"
            elif bid_signatures is not None and signature not in bid_signatures:
                fate = "not_in_bid_terms"
            elif self.deduplicate and signature in seen_signatures:
                fate = "duplicate"
            else:
                fate = "accepted"
                seen_signatures.add(signature)
                accepted.append(
                    Rewrite(query=query, rewrite=candidate, score=score, rank=len(accepted) + 1)
                )
            if collect_decisions:
                decisions.append(
                    CandidateDecision(
                        candidate=candidate,
                        score=score,
                        fate=fate,
                        rank=accepted[-1].rank if fate == "accepted" else None,
                    )
                )
            elif fate == "beyond_max_rewrites":
                break
        return RewriteList(query=query, rewrites=accepted), decisions

    def rewrite_all(self, queries: Iterable[Node]) -> List[RewriteList]:
        """Rewrites for a whole evaluation query sample."""
        return [self.rewrites_for(query) for query in queries]

    # ----------------------------------------------------------------- stats

    def coverage(self, queries: Sequence[Node]) -> float:
        """Fraction of the given queries with at least one surviving rewrite."""
        if not queries:
            return 0.0
        covered = sum(1 for query in queries if self.rewrites_for(query).covered)
        return covered / len(queries)

    def depth_histogram(self, queries: Sequence[Node]) -> List[int]:
        """Count of queries by surviving-rewrite depth (index = depth)."""
        histogram = [0] * (self.max_rewrites + 1)
        for query in queries:
            histogram[self.rewrites_for(query).depth] += 1
        return histogram
