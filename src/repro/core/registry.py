"""Deprecated shim over the pluggable method registry.

The string-if-chain factory that used to live here was replaced by the
decorator-based registry in :mod:`repro.api.registry`; this module keeps the
old entry points importable.  New code should use
:func:`repro.api.registry.create` (or, for serving,
:class:`repro.api.engine.RewriteEngine`) and register custom methods with
:func:`repro.api.registry.register_method`.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.api.registry import PAPER_METHODS, available_methods, create
from repro.core.config import SimrankConfig
from repro.core.similarity_base import QuerySimilarityMethod

__all__ = ["available_methods", "create_method", "PAPER_METHODS"]


def create_method(
    name: str,
    config: Optional[SimrankConfig] = None,
    backend: str = "matrix",
) -> QuerySimilarityMethod:
    """Instantiate a similarity method by name.

    .. deprecated:: 1.1
        Use :func:`repro.api.registry.create` or a
        :class:`repro.api.engine.RewriteEngine` instead; this shim forwards
        to the registry and will be removed in version 2.0.
    """
    warnings.warn(
        "repro.create_method is deprecated and will be removed in version "
        "2.0; use repro.api.registry.create (or RewriteEngine for serving) "
        "instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return create(name, config=config, backend=backend)
