"""Registry of query-similarity methods.

The evaluation harness and the CLI refer to methods by name; this module maps
those names to configured instances.  Two backends are available for the
SimRank family: the ``reference`` node-pair implementations (faithful to the
paper's equations, good for small graphs and traces) and the ``matrix``
implementation (same fixpoint, dense linear algebra, used for experiments).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.baselines import CommonAdSimilarity, CosineSimilarity, JaccardSimilarity
from repro.core.config import SimrankConfig
from repro.core.evidence_simrank import EvidenceSimrank
from repro.core.pearson import PearsonSimilarity
from repro.core.simrank import BipartiteSimrank
from repro.core.simrank_matrix import MatrixSimrank
from repro.core.similarity_base import QuerySimilarityMethod
from repro.core.weighted_simrank import WeightedSimrank

__all__ = ["available_methods", "create_method", "PAPER_METHODS"]

#: The four methods compared throughout the paper's evaluation, in the order
#: the figures list them.
PAPER_METHODS = ["pearson", "simrank", "evidence_simrank", "weighted_simrank"]


def available_methods() -> List[str]:
    """Names accepted by :func:`create_method`."""
    return ["pearson", "simrank", "evidence_simrank", "weighted_simrank",
            "common_ads", "jaccard", "cosine"]


def create_method(
    name: str,
    config: Optional[SimrankConfig] = None,
    backend: str = "matrix",
) -> QuerySimilarityMethod:
    """Instantiate a similarity method by name.

    Parameters
    ----------
    name:
        One of :func:`available_methods`.
    config:
        SimRank configuration shared by the SimRank variants (decay factors,
        iterations, weight source, evidence kind).
    backend:
        ``"matrix"`` (default, fast) or ``"reference"`` (node-pair
        implementation) for the SimRank variants; ignored for the others.
    """
    config = config or SimrankConfig()
    if backend not in ("matrix", "reference"):
        raise ValueError(f"backend must be 'matrix' or 'reference', got {backend!r}")

    if name == "pearson":
        return PearsonSimilarity(source=config.weight_source)
    if name == "common_ads":
        return CommonAdSimilarity()
    if name == "jaccard":
        return JaccardSimilarity()
    if name == "cosine":
        return CosineSimilarity(source=config.weight_source)

    simrank_factories: Dict[str, Dict[str, Callable[[], QuerySimilarityMethod]]] = {
        "simrank": {
            "reference": lambda: BipartiteSimrank(config=config),
            "matrix": lambda: MatrixSimrank(config=config, mode="simrank"),
        },
        "evidence_simrank": {
            "reference": lambda: EvidenceSimrank(config=config),
            "matrix": lambda: MatrixSimrank(config=config, mode="evidence"),
        },
        "weighted_simrank": {
            "reference": lambda: WeightedSimrank(config=config),
            "matrix": lambda: MatrixSimrank(config=config, mode="weighted"),
        },
    }
    if name in simrank_factories:
        return simrank_factories[name][backend]()
    raise ValueError(f"unknown similarity method {name!r}; choose from {available_methods()}")
