"""Naive similarity baselines.

* :func:`common_ad_count` / :class:`CommonAdSimilarity` -- the "count the
  common ads" similarity the paper uses to motivate SimRank (Table 1).  It
  only looks one hop out, so it cannot relate queries such as "pc" and "tv"
  that share no ad but are both similar to queries that do.
* :class:`JaccardSimilarity` and :class:`CosineSimilarity` -- standard
  neighbourhood-overlap comparators included as extra reference points for
  the ablation benchmarks (not part of the paper's evaluation).
"""

from __future__ import annotations

import math
from typing import Hashable

from repro.core.scores import SimilarityScores
from repro.core.similarity_base import QuerySimilarityMethod
from repro.graph.click_graph import ClickGraph, WeightSource

__all__ = [
    "common_ad_count",
    "CommonAdSimilarity",
    "JaccardSimilarity",
    "CosineSimilarity",
]

Node = Hashable


def common_ad_count(graph: ClickGraph, first: Node, second: Node) -> int:
    """Number of ads clicked for both queries (the Table 1 similarity)."""
    return len(set(graph.ads_of(first)) & set(graph.ads_of(second)))


class _PairwiseOverAds(QuerySimilarityMethod):
    """Shared machinery: score only pairs of queries that share an ad."""

    def _pair_score(self, graph: ClickGraph, first: Node, second: Node) -> float:
        raise NotImplementedError

    def _compute_query_scores(self, graph: ClickGraph) -> SimilarityScores:
        scores = SimilarityScores()
        seen = set()
        for ad in graph.ads():
            co_clicked = sorted(graph.queries_of(ad), key=repr)
            for i, first in enumerate(co_clicked):
                for second in co_clicked[i + 1:]:
                    key = (first, second)
                    if key in seen:
                        continue
                    seen.add(key)
                    value = self._pair_score(graph, first, second)
                    if value != 0.0:
                        scores.set(first, second, value)
        return scores


class CommonAdSimilarity(_PairwiseOverAds):
    """Similarity = number of common ads (Table 1)."""

    name = "common_ads"

    def _pair_score(self, graph: ClickGraph, first: Node, second: Node) -> float:
        return float(common_ad_count(graph, first, second))


class JaccardSimilarity(_PairwiseOverAds):
    """Similarity = |E(q) ∩ E(q')| / |E(q) ∪ E(q')|."""

    name = "jaccard"

    def _pair_score(self, graph: ClickGraph, first: Node, second: Node) -> float:
        first_ads = set(graph.ads_of(first))
        second_ads = set(graph.ads_of(second))
        union = first_ads | second_ads
        if not union:
            return 0.0
        return len(first_ads & second_ads) / len(union)


class CosineSimilarity(_PairwiseOverAds):
    """Cosine of the two queries' weighted click vectors over ads."""

    name = "cosine"

    def __init__(self, source: WeightSource = WeightSource.EXPECTED_CLICK_RATE) -> None:
        super().__init__()
        self.source = source

    def _pair_score(self, graph: ClickGraph, first: Node, second: Node) -> float:
        first_weights = graph.query_weights(first, self.source)
        second_weights = graph.query_weights(second, self.source)
        common = set(first_weights) & set(second_weights)
        if not common:
            return 0.0
        dot = sum(first_weights[ad] * second_weights[ad] for ad in common)
        first_norm = math.sqrt(sum(value ** 2 for value in first_weights.values()))
        second_norm = math.sqrt(sum(value ** 2 for value in second_weights.values()))
        if first_norm == 0.0 or second_norm == 0.0:
            return 0.0
        return dot / (first_norm * second_norm)
