"""Workload-shape planner behind ``backend="auto"``.

No fixed SimRank backend wins everywhere.  The repo's own trajectory data
(``benchmarks/BENCH_sparse_backend.json``) records the sparse CSR engine as a
0.73x *slowdown* against dense numpy at 375 nodes but an 11.6x speedup at
1500; the sharded engine only pays off when the graph actually decomposes
into several components.  Instead of making every caller re-derive that
folklore, :func:`plan_fit` inspects the click graph's shape -- component-size
histogram, bipartite edge density, node count -- and picks an execution
strategy:

* ``single-dense`` / ``single-sparse`` -- the graph is (nearly) one
  connected component, so sharding buys nothing; fit one engine over the
  whole graph, dense below the sparse crossover and sparse above it.
* ``sharded`` -- the graph decomposes; fit per component with a dense or
  sparse inner engine chosen *per shard* from the shard's own size, on the
  thread or process pool the workload justifies.

The decision is recorded in an inspectable :class:`PlanReport` (surfaced by
:attr:`repro.api.engine.RewriteEngine.plan_report`, persisted into snapshot
manifests, and printed by ``simrankpp-experiments --backend auto``), so "why
did auto do that?" is always answerable.  :class:`AutoSimrank` is the method
the registry instantiates for ``backend="auto"``: it plans at fit time and
delegates to the chosen concrete engine, reusing the delegate across refits
so the sharded tier's dirty-component detection keeps working under
warm-started refreshes.

All thresholds are module constants with the benchmark evidence beside them;
they are deliberately coarse -- the gate in ``benchmarks/bench_backend_auto.py``
only requires auto to stay within ~10% of the best fixed backend, not to win.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.core.config import SimrankConfig
from repro.core.parallel import pick_executor, resolve_worker_count
from repro.core.similarity_base import QuerySimilarityMethod
from repro.core.simrank_matrix import MatrixSimrank
from repro.core.simrank_sharded import ShardedSimrank
from repro.core.simrank_sparse import SparseSimrank
from repro.graph.click_graph import ClickGraph
from repro.graph.components import connected_components

__all__ = [
    "AutoSimrank",
    "GraphProfile",
    "PlanReport",
    "ShardDecision",
    "choose_component_backend",
    "plan_fit",
    "profile_graph",
]

Node = Hashable

#: Node count at which the sparse CSR engine overtakes dense numpy.
#: BENCH_sparse_backend.json: sparse is 0.73x at 375 nodes, 2.8x at 750 --
#: the crossover sits between, so components below this stay dense.
SPARSE_NODE_THRESHOLD = 500

#: Bipartite edge density (edges over queries*ads) above which a large
#: component stays dense anyway: at high fill the CSR products carry nearly
#: all of n^2 anyway and lose to BLAS on the same data.
DENSE_DENSITY_CEILING = 0.25

#: A graph whose largest component holds at least this fraction of the
#: edge-carrying nodes is treated as single-component: sharding would fit
#: one big shard plus crumbs, and the stitching overhead buys nothing.
SINGLE_FIT_FRACTION = 0.95

_MODES = ("simrank", "evidence", "weighted")
_EXECUTORS = ("thread", "process", "auto")


@dataclass(frozen=True)
class GraphProfile:
    """Shape statistics of a click graph, as the planner saw them."""

    num_queries: int
    num_ads: int
    num_edges: int
    density: float
    #: Nodes per edge-carrying component, largest first (isolated nodes are
    #: excluded: they cannot score against anything and are never fitted).
    component_sizes: Tuple[int, ...]

    @property
    def num_nodes(self) -> int:
        return self.num_queries + self.num_ads

    @property
    def num_components(self) -> int:
        return len(self.component_sizes)

    @property
    def largest_fraction(self) -> float:
        """Share of edge-carrying nodes held by the largest component."""
        total = sum(self.component_sizes)
        if total == 0:
            return 1.0
        return self.component_sizes[0] / total

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_queries": self.num_queries,
            "num_ads": self.num_ads,
            "num_edges": self.num_edges,
            "density": self.density,
            "component_sizes": list(self.component_sizes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "GraphProfile":
        return cls(
            num_queries=int(payload["num_queries"]),
            num_ads=int(payload["num_ads"]),
            num_edges=int(payload["num_edges"]),
            density=float(payload["density"]),
            component_sizes=tuple(int(size) for size in payload["component_sizes"]),
        )


@dataclass(frozen=True)
class ShardDecision:
    """Inner backend chosen for one shard (one edge-carrying component)."""

    nodes: int
    edges: int
    backend: str

    def to_dict(self) -> Dict[str, Any]:
        return {"nodes": self.nodes, "edges": self.edges, "backend": self.backend}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ShardDecision":
        return cls(
            nodes=int(payload["nodes"]),
            edges=int(payload["edges"]),
            backend=str(payload["backend"]),
        )


@dataclass(frozen=True)
class PlanReport:
    """One ``backend="auto"`` decision, inspectable and serializable.

    Attributes
    ----------
    strategy:
        ``"single-dense"``, ``"single-sparse"`` or ``"sharded"``.
    executor:
        Resolved pool flavour for the shard fits (``"thread"`` or
        ``"process"``; single-fit strategies always report ``"thread"``).
    n_jobs:
        The caller's parallelism request, verbatim (``-1`` = all CPUs).
    workers:
        Worker count the request resolved to on this machine.
    profile:
        The graph shape the decision was made from.
    shards:
        Per-shard inner-backend decisions, largest component first
        (empty for single-fit strategies).
    rationale:
        One human-readable sentence saying why.
    """

    strategy: str
    executor: str
    n_jobs: int
    workers: int
    profile: GraphProfile
    shards: Tuple[ShardDecision, ...] = field(default_factory=tuple)
    rationale: str = ""

    def summary(self) -> str:
        """One-line rendering for CLI output and logs."""
        shape = (
            f"{self.profile.num_nodes} nodes, {self.profile.num_edges} edges, "
            f"{self.profile.num_components} components"
        )
        if self.strategy == "sharded":
            dense = sum(1 for shard in self.shards if shard.backend == "matrix")
            sparse = len(self.shards) - dense
            detail = (
                f"{len(self.shards)} shards ({dense} dense / {sparse} sparse), "
                f"executor={self.executor}, workers={self.workers}"
            )
        else:
            detail = "one fit over the whole graph"
        return f"plan: {self.strategy} [{shape}; {detail}] -- {self.rationale}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "executor": self.executor,
            "n_jobs": self.n_jobs,
            "workers": self.workers,
            "profile": self.profile.to_dict(),
            "shards": [shard.to_dict() for shard in self.shards],
            "rationale": self.rationale,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PlanReport":
        return cls(
            strategy=str(payload["strategy"]),
            executor=str(payload["executor"]),
            n_jobs=int(payload["n_jobs"]),
            workers=int(payload["workers"]),
            profile=GraphProfile.from_dict(payload["profile"]),
            shards=tuple(
                ShardDecision.from_dict(shard) for shard in payload.get("shards", [])
            ),
            rationale=str(payload.get("rationale", "")),
        )


# ----------------------------------------------------------------- decisions


def choose_component_backend(nodes: int, edges: int) -> str:
    """Dense or sparse engine for one component of ``nodes`` / ``edges``.

    Dense below :data:`SPARSE_NODE_THRESHOLD` (small dense matrices beat CSR
    bookkeeping), and above it sparse -- unless the component is so dense
    (> :data:`DENSE_DENSITY_CEILING` of a balanced bipartite fill) that CSR
    products would carry nearly the full ``n^2`` anyway.
    """
    if nodes < SPARSE_NODE_THRESHOLD:
        return "matrix"
    possible = max((nodes / 2.0) ** 2, 1.0)  # balanced bipartite upper bound
    if edges / possible > DENSE_DENSITY_CEILING:
        return "matrix"
    return "sparse"


def profile_graph(graph: ClickGraph) -> GraphProfile:
    """Measure the shape statistics :func:`plan_fit` decides from."""
    sizes = sorted(
        (
            len(queries) + len(ads)
            for queries, ads in connected_components(graph)
            if queries and ads  # one-sided components are isolated nodes
        ),
        reverse=True,
    )
    num_queries = graph.num_queries
    num_ads = graph.num_ads
    possible = max(num_queries * num_ads, 1)
    return GraphProfile(
        num_queries=num_queries,
        num_ads=num_ads,
        num_edges=graph.num_edges,
        density=graph.num_edges / possible,
        component_sizes=tuple(sizes),
    )


def plan_fit(
    graph: ClickGraph, n_jobs: int = 1, executor: str = "auto"
) -> PlanReport:
    """Choose the execution strategy for fitting SimRank on ``graph``."""
    profile = profile_graph(graph)
    if profile.num_components <= 1 or profile.largest_fraction >= SINGLE_FIT_FRACTION:
        backend = choose_component_backend(profile.num_nodes, profile.num_edges)
        strategy = f"single-{'dense' if backend == 'matrix' else 'sparse'}"
        if profile.num_components <= 1:
            why = "the graph is a single connected component, sharding buys nothing"
        else:
            why = (
                f"the largest component holds {profile.largest_fraction:.0%} of the "
                "nodes, sharding would fit one big shard plus crumbs"
            )
        return PlanReport(
            strategy=strategy,
            executor="thread",
            n_jobs=n_jobs,
            workers=1,
            profile=profile,
            rationale=f"{why}; {profile.num_nodes} nodes fit {backend}",
        )

    decisions = []
    for queries, ads in connected_components(graph):
        if not queries or not ads:
            continue
        nodes = len(queries) + len(ads)
        edges = sum(len(graph.ads_of(query)) for query in queries)
        decisions.append(
            ShardDecision(
                nodes=nodes, edges=edges, backend=choose_component_backend(nodes, edges)
            )
        )
    decisions.sort(key=lambda decision: -decision.nodes)
    workers = resolve_worker_count(n_jobs, len(decisions))
    resolved = executor
    if resolved == "auto":
        resolved = pick_executor([decision.nodes for decision in decisions], workers)
    return PlanReport(
        strategy="sharded",
        executor=resolved,
        n_jobs=n_jobs,
        workers=workers,
        profile=profile,
        shards=tuple(decisions),
        rationale=(
            f"{profile.num_components} independent components fit per shard; "
            f"{resolved} pool over {workers} worker(s)"
        ),
    )


# ------------------------------------------------------------------- method


class AutoSimrank(QuerySimilarityMethod):
    """The ``backend="auto"`` method: plan at fit time, delegate the fit.

    Each :meth:`fit` runs :func:`plan_fit` on the incoming graph and hands
    the actual computation to the planned concrete engine
    (:class:`MatrixSimrank`, :class:`SparseSimrank` or
    :class:`ShardedSimrank` with per-shard inner choice).  The scores are
    therefore *identical* to the fixed backend the plan names -- auto only
    decides which one runs.  When consecutive fits plan the same strategy
    the delegate is kept, so warm-started refreshes retain the sharded
    tier's dirty-component reuse and the iterative engines' seeded starts.

    The decision of the last fit is exposed as :attr:`plan`.
    """

    def __init__(
        self,
        config: Optional[SimrankConfig] = None,
        mode: str = "simrank",
        min_score: float = 1e-9,
        n_jobs: int = 1,
        executor: str = "auto",
    ) -> None:
        super().__init__()
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if n_jobs == 0 or n_jobs < -1:
            raise ValueError(f"n_jobs must be a positive integer or -1, got {n_jobs}")
        if executor not in _EXECUTORS:
            raise ValueError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
        self.config = config or SimrankConfig()
        self.mode = mode
        self.min_score = min_score
        self.n_jobs = n_jobs
        self.executor = executor
        self.name = {
            "simrank": "simrank",
            "evidence": "evidence_simrank",
            "weighted": "weighted_simrank",
        }[mode]
        #: The :class:`PlanReport` of the last successful fit (fit-only
        #: extra: cleared by :meth:`restore`, absent on snapshot loads).
        self.plan: Optional[PlanReport] = None
        #: Whether the last fit received a warm-start seed.
        self.warm_started: bool = False
        self._delegate: Optional[QuerySimilarityMethod] = None

    # -------------------------------------------------------------- fit path

    def _compute_query_scores(self, graph: ClickGraph):
        seed = self._warm_start_scores
        plan = plan_fit(graph, n_jobs=self.n_jobs, executor=self.executor)
        delegate = self._delegate_for(plan)
        delegate.fit(graph, initial_scores=seed)
        # Publish auto-level state only after the delegate fit succeeded, so
        # a failed refit leaves the previous plan/delegate (and, via the base
        # class contract, the previous scores) untouched and still serving.
        self._delegate = delegate
        self.plan = plan
        self.warm_started = seed is not None
        return delegate.similarities()

    def _delegate_for(self, plan: PlanReport) -> QuerySimilarityMethod:
        previous = self.plan
        if (
            self._delegate is not None
            and previous is not None
            and previous.strategy == plan.strategy
        ):
            return self._delegate
        if plan.strategy == "sharded":
            return ShardedSimrank(
                config=self.config,
                mode=self.mode,
                min_score=self.min_score,
                n_jobs=self.n_jobs,
                inner_backend="auto",
                executor=self.executor,
            )
        if plan.strategy == "single-sparse":
            return SparseSimrank(config=self.config, mode=self.mode)
        return MatrixSimrank(
            config=self.config, mode=self.mode, min_score=self.min_score
        )

    # ---------------------------------------------------------------- access

    @property
    def delegate(self) -> Optional[QuerySimilarityMethod]:
        """The concrete engine the last fit ran on (None before any fit)."""
        return self._delegate

    @property
    def iterations_run(self) -> Optional[int]:
        """Iterations of the delegate's last fit, when it tracks them."""
        return getattr(self._delegate, "iterations_run", None)

    @property
    def reused_shards(self) -> Optional[int]:
        """Shards reused verbatim by a sharded delegate (else None)."""
        return getattr(self._delegate, "reused_shards", None)

    @property
    def refitted_shards(self) -> Optional[int]:
        return getattr(self._delegate, "refitted_shards", None)

    def ad_similarity(self, first: Node, second: Node) -> float:
        """Ad-side similarity under the delegate's fixpoint."""
        self._require_fitted()
        delegate = self._require_fit_extra(self._delegate, "ad-side scores")
        return delegate.ad_similarity(first, second)

    def restore(self, scores, graph=None) -> "AutoSimrank":
        """Adopt precomputed scores; the plan and delegate are fit-only."""
        super().restore(scores, graph)
        self.plan = None
        self.warm_started = False
        self._delegate = None
        return self
