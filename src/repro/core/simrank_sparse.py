"""Sparse pruned SimRank engine.

Production click graphs are huge but extremely sparse, and similarity
computation is in practice limited to a few iterations (the paper tabulates
seven) over score matrices that stay mostly zero.  The dense engine
(:class:`~repro.core.simrank_matrix.MatrixSimrank`) nevertheless allocates
``O(n^2)`` numpy matrices and multiplies full blocks of structural zeros.

:class:`SparseSimrank` runs the same Jacobi iteration on ``scipy.sparse`` CSR
matrices built from :meth:`ClickGraph.to_sparse_matrix`, so every matrix
product costs work proportional to the *nonzeros* -- which, in the paper's
small-iteration regime, track the number of node pairs within a few hops of
each other rather than ``n^2``.  Two sound pruning knobs bound fill-in:

``min_score`` (per-iteration epsilon truncation)
    Entries below ``min_score`` are dropped after every iteration.  With the
    default of 0 the computation is *exact* and agrees with the dense and
    reference engines to machine precision (``tests/equivalence/`` enforces
    1e-6).  A positive epsilon is a lossy but sound approximation: a dropped
    entry can perturb downstream scores by at most
    ``min_score * c / (1 - c)`` per endpoint, which the small-iteration
    regime keeps far below serving-relevant score differences.

``top_k`` (per-row retention)
    After truncation, keep only the ``top_k`` largest off-diagonal entries of
    each row (an entry survives if either endpoint retains it, so the matrix
    stays symmetric).  This caps memory at ``O(n * top_k)`` regardless of
    fill-in; serving only ever reads the top few rewrites per query, so a
    ``top_k`` comfortably above the rewrite depth is serving-exact.

Both knobs default from :class:`~repro.core.config.SimrankConfig`
(``prune_threshold`` / ``prune_top_k``) so they flow through
:class:`~repro.api.config.EngineConfig` and the experiments CLI.  The final
scores are served from an :class:`~repro.core.scores_array
.ArraySimilarityScores` wrapping the last CSR matrix directly -- no
dict-of-dicts materialization at all.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.core.config import EvidenceKind, SimrankConfig
from repro.core.scores_array import ArraySimilarityScores
from repro.core.similarity_base import QuerySimilarityMethod
from repro.core.warm_start import seed_csr
from repro.graph.click_graph import ClickGraph

__all__ = ["SparseSimrank"]

Node = Hashable

_MODES = ("simrank", "evidence", "weighted")


class SparseSimrank(QuerySimilarityMethod):
    """SimRank family on sparse matrices with epsilon/top-k pruning."""

    def __init__(
        self,
        config: Optional[SimrankConfig] = None,
        mode: str = "simrank",
        min_score: Optional[float] = None,
        top_k: Optional[int] = None,
    ) -> None:
        """
        Parameters
        ----------
        config:
            Shared SimRank parameters; its ``prune_threshold`` and
            ``prune_top_k`` fields supply the pruning defaults.
        mode:
            ``"simrank"``, ``"evidence"`` or ``"weighted"`` -- same semantics
            as the dense engine.
        min_score:
            Per-iteration truncation epsilon (and final storage threshold).
            ``None`` reads ``config.prune_threshold``; 0 disables truncation
            and makes the computation exact.
        top_k:
            Per-row retention cap.  ``None`` reads ``config.prune_top_k``;
            0 keeps every entry.
        """
        super().__init__()
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.config = config or SimrankConfig()
        self.mode = mode
        self.min_score = (
            self.config.prune_threshold if min_score is None else float(min_score)
        )
        if not 0.0 <= self.min_score < 1.0:
            raise ValueError(f"min_score must be in [0, 1), got {self.min_score}")
        chosen_top_k = self.config.prune_top_k if top_k is None else int(top_k)
        if chosen_top_k < 0:
            raise ValueError(f"top_k must be >= 0, got {chosen_top_k}")
        self.top_k = chosen_top_k or None
        # Report under the same name as the corresponding reference method so
        # experiment tables read like the paper's.
        self.name = {
            "simrank": "simrank",
            "evidence": "evidence_simrank",
            "weighted": "weighted_simrank",
        }[mode]
        #: Iterations actually executed by the last fit (early exit included).
        self.iterations_run: Optional[int] = None
        #: Whether the last fit started from a warm seed instead of identity.
        self.warm_started: bool = False
        self._query_index: List[Node] = []
        self._ad_index: List[Node] = []
        self._query_matrix: Optional[sparse.csr_matrix] = None
        self._ad_scores: Optional[ArraySimilarityScores] = None

    # -------------------------------------------------------------- fit path

    def _compute_query_scores(self, graph: ClickGraph) -> ArraySimilarityScores:
        self.warm_started = False
        binary, self._query_index, self._ad_index = graph.to_sparse_matrix(binary=True)
        n_q, n_a = binary.shape
        if binary.nnz == 0:
            self._query_matrix = sparse.csr_matrix((n_q, n_q))
            self._ad_scores = ArraySimilarityScores(
                sparse.csr_matrix((n_a, n_a)), self._ad_index
            )
            self.iterations_run = 0
            return ArraySimilarityScores(self._query_matrix, self._query_index)

        if self.mode == "weighted":
            # Only the weighted walk reads edge weights; the other modes skip
            # the second O(E) export entirely.
            weights, _, _ = graph.to_sparse_matrix(source=self.config.weight_source)
            p_query, p_ad = _weighted_transitions(binary, weights)
        else:
            p_query = _row_normalize(binary)
            p_ad = _row_normalize(binary.T.tocsr())

        floor = self.config.zero_evidence_floor
        if self.mode == "simrank":
            evidence_query = evidence_ad = None
        else:
            evidence_query = _evidence_offsets(binary, self.config.evidence, floor)
            evidence_ad = _evidence_offsets(
                binary.T.tocsr(), self.config.evidence, floor
            )

        seed = self._warm_start_scores
        self.warm_started = seed is not None
        if seed is not None:
            # Warm start: seed the query side with the previous scores and
            # derive the ad side by one application of the ad update -- the
            # same half-step the dense engine takes, so both sides start
            # near the fixpoint and the tolerance early exit can fire after
            # a couple of polish iterations.
            sim_query = seed_csr(seed, self._query_index)
            sim_ad = (self.config.c2 * (p_ad @ sim_query @ p_ad.T)).tocsr()
            if self.mode == "weighted":
                sim_ad = _apply_evidence(sim_ad, evidence_ad, floor)
            sim_ad = _with_unit_diagonal(sim_ad)
            if self.min_score > 0.0:
                sim_ad = _truncate(sim_ad, self.min_score)
            if self.top_k is not None:
                sim_ad = _retain_top_k(sim_ad, self.top_k)
        else:
            sim_query = sparse.identity(n_q, format="csr")
            sim_ad = sparse.identity(n_a, format="csr")
        self.iterations_run = 0
        for _ in range(self.config.iterations):
            new_query = (self.config.c1 * (p_query @ sim_ad @ p_query.T)).tocsr()
            new_ad = (self.config.c2 * (p_ad @ sim_query @ p_ad.T)).tocsr()
            if self.mode == "weighted":
                new_query = _apply_evidence(new_query, evidence_query, floor)
                new_ad = _apply_evidence(new_ad, evidence_ad, floor)
            new_query = _with_unit_diagonal(new_query)
            new_ad = _with_unit_diagonal(new_ad)
            if self.min_score > 0.0:
                new_query = _truncate(new_query, self.min_score)
                new_ad = _truncate(new_ad, self.min_score)
            if self.top_k is not None:
                new_query = _retain_top_k(new_query, self.top_k)
                new_ad = _retain_top_k(new_ad, self.top_k)
            delta = 0.0
            if self.config.tolerance > 0:
                delta = max(_max_abs(new_query - sim_query), _max_abs(new_ad - sim_ad))
            sim_query, sim_ad = new_query, new_ad
            self.iterations_run += 1
            if self.config.tolerance > 0 and delta < self.config.tolerance:
                break

        if self.mode == "evidence":
            sim_query = _with_unit_diagonal(
                _apply_evidence(sim_query, evidence_query, floor)
            )
            sim_ad = _with_unit_diagonal(_apply_evidence(sim_ad, evidence_ad, floor))

        self._query_matrix = sim_query
        self._ad_scores = ArraySimilarityScores.from_sparse(
            sim_ad, self._ad_index, min_score=self.min_score
        )
        return ArraySimilarityScores.from_sparse(
            sim_query, self._query_index, min_score=self.min_score
        )

    # ---------------------------------------------------------------- access

    def restore(self, scores, graph=None) -> "SparseSimrank":
        """Adopt precomputed query scores; matrices and indexes are fit-only.

        Clearing them keeps a re-restored instance honest: the ad-side
        accessors fail loudly instead of serving a previous fit's values
        alongside the adopted query scores.
        """
        super().restore(scores, graph)
        self.iterations_run = None
        self.warm_started = False
        self._query_index = []
        self._ad_index = []
        self._query_matrix = None
        self._ad_scores = None
        return self

    def ad_similarity(self, first: Node, second: Node) -> float:
        """Similarity of two ads under the same fixpoint."""
        self._require_fitted()
        return self._require_fit_extra(self._ad_scores, "ad-side scores").score(
            first, second
        )

    def query_matrix(self) -> Tuple[sparse.csr_matrix, List[Node]]:
        """The raw sparse query-query similarity matrix and its index.

        Unlike the dense engine's index, this one covers *every* query node
        (isolated queries simply own an empty row).
        """
        self._require_fitted()
        matrix = self._require_fit_extra(self._query_matrix, "raw query matrix")
        return matrix, list(self._query_index)


# ---------------------------------------------------------------- internals


def _row_normalize(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    """Divide each row by its sum (rows that sum to zero stay zero)."""
    sums = np.asarray(matrix.sum(axis=1)).ravel()
    inverse = np.where(sums > 0, 1.0 / np.where(sums > 0, sums, 1.0), 0.0)
    return (sparse.diags(inverse) @ matrix).tocsr()


def _weighted_transitions(
    binary: sparse.csr_matrix, weights: sparse.csr_matrix
) -> Tuple[sparse.csr_matrix, sparse.csr_matrix]:
    """The ``W(q, a)`` and ``W(a, q)`` factor matrices of weighted SimRank."""
    ad_spread = _spread_vector(weights.T.tocsr())  # one value per ad (column)
    query_spread = _spread_vector(weights)  # one value per query (row)

    row_sums = np.asarray(weights.sum(axis=1)).ravel()
    inverse_rows = np.where(row_sums > 0, 1.0 / np.where(row_sums > 0, row_sums, 1.0), 0.0)
    p_query = (sparse.diags(inverse_rows) @ weights @ sparse.diags(ad_spread)).tocsr()

    col_sums = np.asarray(weights.sum(axis=0)).ravel()
    inverse_cols = np.where(col_sums > 0, 1.0 / np.where(col_sums > 0, col_sums, 1.0), 0.0)
    p_ad = (
        (sparse.diags(query_spread) @ weights @ sparse.diags(inverse_cols)).T
    ).tocsr()
    return p_query, p_ad


def _spread_vector(matrix: sparse.csr_matrix) -> np.ndarray:
    """``exp(-variance)`` of the non-zero weights of each row.

    Mirrors the dense engine's ``_spread_vector``: population variance of the
    weights of incident edges only (stored zeros are absent observations),
    computed from exact per-entry deviations so the two engines agree to
    machine precision.
    """
    n = matrix.shape[0]
    data = matrix.data
    rows = np.repeat(np.arange(n), np.diff(matrix.indptr))
    mask = data != 0
    counts = np.bincount(rows[mask], minlength=n)
    safe_counts = np.where(counts > 0, counts, 1)
    sums = np.bincount(rows[mask], weights=data[mask], minlength=n)
    means = sums / safe_counts
    deviations = np.where(mask, data - means[rows], 0.0)
    variances = np.bincount(rows, weights=deviations ** 2, minlength=n) / safe_counts
    spreads = np.exp(-variances)
    return np.where(counts > 0, spreads, 1.0)


def _evidence_offsets(
    binary: sparse.csr_matrix, kind: EvidenceKind, floor: float
) -> sparse.csr_matrix:
    """Sparse evidence factors, stored as offsets above the zero-evidence floor.

    The full (dense) evidence matrix is ``floor`` wherever two rows share no
    column and ``evidence(common)`` elsewhere, so it decomposes as
    ``floor + offsets`` with ``offsets`` sparse on the common-neighbour
    pattern.  Multiplying a sparse score matrix ``S`` elementwise by the full
    evidence matrix is then ``floor * S + S ⊙ offsets`` -- no dense
    materialization.  (Diagonals are irrelevant: callers reset them to 1.)
    """
    common = (binary @ binary.T).tocsr()
    if kind is EvidenceKind.GEOMETRIC:
        factors = 1.0 - np.power(0.5, common.data)
    elif kind is EvidenceKind.EXPONENTIAL:
        factors = 1.0 - np.exp(-common.data)
    else:
        raise ValueError(f"unknown evidence kind: {kind!r}")
    offsets = common.copy()
    offsets.data = factors - floor
    return offsets


def _apply_evidence(
    scores: sparse.csr_matrix, offsets: sparse.csr_matrix, floor: float
) -> sparse.csr_matrix:
    """Elementwise product of sparse scores with the implicit evidence matrix."""
    scaled = scores.multiply(offsets).tocsr()
    if floor:
        scaled = (scaled + floor * scores).tocsr()
    return scaled


def _with_unit_diagonal(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    """Copy of the matrix with its diagonal overwritten to 1."""
    diagonal = matrix.diagonal()
    if np.any(diagonal):
        matrix = matrix - sparse.diags(diagonal)
    return (matrix + sparse.identity(matrix.shape[0])).tocsr()


def _truncate(matrix: sparse.csr_matrix, epsilon: float) -> sparse.csr_matrix:
    """Drop entries below ``epsilon`` (the unit diagonal always survives)."""
    matrix.data[matrix.data < epsilon] = 0.0
    matrix.eliminate_zeros()
    return matrix


def _retain_top_k(matrix: sparse.csr_matrix, k: int) -> sparse.csr_matrix:
    """Keep the ``k`` largest off-diagonal entries of each row, symmetrized.

    The diagonal (the implicit self-score) is always kept and does not count
    against ``k``.  Symmetry is restored by keeping an entry when *either*
    endpoint retains it, so pruning never makes the matrix asymmetric.
    """
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    keep = np.ones(data.size, dtype=bool)
    for i in range(matrix.shape[0]):
        start, end = indptr[i], indptr[i + 1]
        off_diagonal = np.nonzero(indices[start:end] != i)[0]
        if off_diagonal.size <= k:
            continue
        row_values = data[start:end][off_diagonal]
        dropped = np.argpartition(row_values, row_values.size - k)[: row_values.size - k]
        keep[start + off_diagonal[dropped]] = False
    if keep.all():
        return matrix
    pruned = matrix.copy()
    pruned.data[~keep] = 0.0
    pruned.eliminate_zeros()
    return pruned.maximum(pruned.T).tocsr()


def _max_abs(matrix: "sparse.spmatrix") -> float:
    difference = abs(matrix)
    return float(difference.max()) if difference.nnz else 0.0
