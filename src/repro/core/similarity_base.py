"""Common interface of all query-similarity methods.

Every method (Pearson, the SimRank family and the extra baselines) follows
the same two-phase protocol: :meth:`QuerySimilarityMethod.fit` analyses a
click graph once, after which query-query similarities and ranked rewrite
candidates can be read off repeatedly.  The evaluation harness only talks to
this interface, so methods are interchangeable.
"""

from __future__ import annotations

import abc
from typing import Hashable, List, Optional, Tuple

from repro.core.scores import SimilarityScores
from repro.graph.click_graph import ClickGraph

__all__ = ["QuerySimilarityMethod"]

Node = Hashable


class QuerySimilarityMethod(abc.ABC):
    """Base class for query-query similarity methods over a click graph."""

    #: Short machine-readable method name used by the registry and reports.
    name: str = "base"

    def __init__(self) -> None:
        self._graph: Optional[ClickGraph] = None
        self._query_scores: Optional[SimilarityScores] = None
        #: Bumped by every fit() and restore(); serving layers compare it to
        #: detect an out-of-band refit/restore and drop their caches.
        self._fit_generation = 0
        #: Warm-start seed visible to _compute_query_scores during one fit.
        self._warm_start_scores = None

    # ------------------------------------------------------------------- fit

    def fit(
        self, graph: ClickGraph, initial_scores=None
    ) -> "QuerySimilarityMethod":
        """Analyse the click graph and cache query-query similarity scores.

        ``initial_scores`` optionally seeds the computation with a previous
        fit's query scores (any store exposing ``score``/``pairs``, such as
        :meth:`similarities` of an earlier fit or a revived snapshot).  The
        iterative backends start their fixpoint from the seed instead of
        the identity -- with ``SimrankConfig.tolerance`` early exit, a fit
        after a small graph perturbation converges in far fewer iterations
        -- and the sharded backend additionally reuses untouched components
        verbatim.  Methods without an iterative fixpoint (Pearson, the
        overlap baselines) ignore the seed; results are unchanged either
        way, only the work to reach them shrinks.

        The replacement score store is computed *fully* before being
        published into ``self._query_scores`` (a single reference
        assignment), so a fit that raises mid-computation leaves the
        previously fitted scores untouched and still serving.  This is the
        build-then-publish half of the serving tier's refresh contract
        (see :meth:`repro.api.engine.RewriteEngine.refresh`).
        """
        self._graph = graph
        self._warm_start_scores = initial_scores
        try:
            self._query_scores = self._compute_query_scores(graph)
        finally:
            self._warm_start_scores = None
        self._fit_generation += 1
        return self

    @abc.abstractmethod
    def _compute_query_scores(self, graph: ClickGraph) -> SimilarityScores:
        """Compute the pairwise query similarity scores for ``graph``."""

    def restore(
        self, scores: SimilarityScores, graph: Optional[ClickGraph] = None
    ) -> "QuerySimilarityMethod":
        """Adopt precomputed query scores as the fitted state, skipping the fit.

        This is the snapshot-loading path (:mod:`repro.api.snapshot`): the
        score store written by a previous :meth:`fit` is plugged back in, and
        every serving read -- :meth:`query_similarity`, :meth:`top_rewrites`,
        :meth:`covers` -- behaves exactly as if that fit had just returned.
        Backend-specific extras that do not feed query serving (ad-side
        scores, shard introspection, per-iteration histories) are *not*
        restored and keep their unfitted defaults.
        """
        self._graph = graph
        self._query_scores = scores
        self._fit_generation += 1
        return self

    # ---------------------------------------------------------------- access

    @property
    def is_fitted(self) -> bool:
        return self._query_scores is not None

    @property
    def graph(self) -> ClickGraph:
        self._require_fitted()
        return self._graph

    def similarities(self) -> SimilarityScores:
        """The full set of query-query similarity scores."""
        self._require_fitted()
        return self._query_scores

    def query_similarity(self, first: Node, second: Node) -> float:
        """Similarity of two queries (1 for identical queries, 0 if unrelated)."""
        self._require_fitted()
        return self._query_scores.score(first, second)

    def top_rewrites(
        self, query: Node, k: int = 5, minimum: float = 0.0
    ) -> List[Tuple[Node, float]]:
        """The ``k`` highest-scoring rewrite candidates for ``query``.

        These are *unfiltered* candidates; the sponsored-search front-end
        (:class:`repro.core.rewriter.QueryRewriter`) applies stemming-based
        deduplication and bid-term filtering on top.
        """
        self._require_fitted()
        return self._query_scores.top(query, k=k, minimum=minimum)

    def covers(self, query: Node) -> bool:
        """Whether the method can propose at least one rewrite for ``query``."""
        self._require_fitted()
        return bool(self._query_scores.top(query, k=1))

    # ------------------------------------------------------------------ misc

    def _require_fitted(self) -> None:
        if self._query_scores is None:
            raise RuntimeError(
                f"{type(self).__name__} has not been fitted; call .fit(graph) first"
            )

    def _require_fit_extra(self, value, what: str):
        """Guard for state that :meth:`fit` computes but :meth:`restore` cannot.

        Engine snapshots persist only the query-side scores, so on a restored
        method the backend extras (ad-side scores, iteration traces) are
        absent; accessing them must fail with this clear message rather than
        an ``AttributeError`` on ``None``.
        """
        if value is None:
            raise RuntimeError(
                f"{type(self).__name__} has no {what}: it is computed by "
                "fit() and not part of an engine snapshot -- refit on a "
                "click graph to recompute it"
            )
        return value

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return f"{type(self).__name__}(name={self.name!r}, {state})"
