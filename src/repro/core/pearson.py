"""Pearson-correlation baseline (paper Section 9.1).

The Pearson correlation between two queries measures the strength of a linear
relationship between their click-weight vectors restricted to the ads they
have in common:

.. math::

   sim_{pearson}(q, q') =
   \\frac{\\sum_{a \\in E(q) \\cap E(q')} (w(q, a) - \\bar w_q)(w(q', a) - \\bar w_{q'})}
        {\\sqrt{\\sum_a (w(q, a) - \\bar w_q)^2} \\sqrt{\\sum_a (w(q', a) - \\bar w_{q'})^2}}

where ``\\bar w_q`` is the *average weight of all edges incident to q* (not
just the common ones) and the sums range over the common ads.  When the two
queries share no ad, or the denominator vanishes, the similarity is 0.  The
score lies in ``[-1, 1]``; only positive scores are useful as rewrites.
"""

from __future__ import annotations

import math
from typing import Hashable

from repro.core.scores import SimilarityScores
from repro.core.similarity_base import QuerySimilarityMethod
from repro.graph.click_graph import ClickGraph, WeightSource

__all__ = ["PearsonSimilarity", "pearson_similarity"]

Node = Hashable


def pearson_similarity(
    graph: ClickGraph,
    first: Node,
    second: Node,
    source: WeightSource = WeightSource.EXPECTED_CLICK_RATE,
) -> float:
    """Pearson correlation of two queries' click weights over their common ads."""
    first_weights = graph.query_weights(first, source)
    second_weights = graph.query_weights(second, source)
    common = set(first_weights) & set(second_weights)
    if not common:
        return 0.0

    first_mean = sum(first_weights.values()) / len(first_weights)
    second_mean = sum(second_weights.values()) / len(second_weights)

    numerator = 0.0
    first_variance = 0.0
    second_variance = 0.0
    for ad in common:
        first_dev = first_weights[ad] - first_mean
        second_dev = second_weights[ad] - second_mean
        numerator += first_dev * second_dev
        first_variance += first_dev ** 2
        second_variance += second_dev ** 2
    denominator = math.sqrt(first_variance) * math.sqrt(second_variance)
    if denominator == 0.0:
        return 0.0
    return numerator / denominator


class PearsonSimilarity(QuerySimilarityMethod):
    """All-pairs Pearson similarity over queries sharing at least one ad.

    Only query pairs with at least one common ad can receive a non-zero
    score, which is exactly why the paper finds its query coverage so much
    lower than the SimRank variants'.
    """

    name = "pearson"

    def __init__(
        self,
        source: WeightSource = WeightSource.EXPECTED_CLICK_RATE,
        keep_negative: bool = False,
    ) -> None:
        super().__init__()
        self.source = source
        #: Negative correlations indicate *dissimilar* queries; by default
        #: they are dropped so they never rank above unrelated queries.
        self.keep_negative = keep_negative

    def _compute_query_scores(self, graph: ClickGraph) -> SimilarityScores:
        scores = SimilarityScores()
        # Only pairs sharing an ad can be non-zero: enumerate them via ads.
        seen = set()
        for ad in graph.ads():
            co_clicked = sorted(graph.queries_of(ad), key=repr)
            for i, first in enumerate(co_clicked):
                for second in co_clicked[i + 1:]:
                    key = (first, second)
                    if key in seen:
                        continue
                    seen.add(key)
                    value = pearson_similarity(graph, first, second, self.source)
                    if value == 0.0:
                        continue
                    if value < 0.0 and not self.keep_negative:
                        continue
                    scores.set(first, second, value)
        return scores
