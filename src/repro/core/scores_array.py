"""Array-backed similarity score store.

:class:`~repro.core.scores.SimilarityScores` keeps one Python dict entry per
*direction* of every stored pair, so materializing the result of a matrix
fixpoint costs two dict insertions (plus boxing) per pair -- on realistic
click graphs that eager copy dominates fit time well before the linear
algebra does.  :class:`ArraySimilarityScores` implements the same read
interface (``score``, ``top``, ``neighbors``, ``pairs``, ``max_difference``,
``nodes``, ``nonzero_count``, ``copy``, ``len``) directly over the final
similarity matrix: a symmetric ``scipy.sparse`` CSR matrix with zero diagonal
plus the node index mapping rows to node identifiers.  Nothing is copied out
of the matrix; ``top()`` is served with a vectorized ``numpy`` partition
instead of per-pair dict traffic.

Self-similarities are implicit 1 (never stored), missing pairs score 0 --
exactly like the dict-backed container.  The store is read-only: similarity
engines build it once from their fixpoint matrix and serving code only reads.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Sequence, Tuple

import numpy as np
from scipy import sparse

__all__ = ["ArraySimilarityScores"]

Node = Hashable


class ArraySimilarityScores:
    """Symmetric node-pair similarity scores backed by one CSR matrix.

    The matrix must be symmetric with a zero diagonal; use the
    :meth:`from_dense` / :meth:`from_sparse` constructors, which enforce both
    by mirroring the strict upper triangle (entries must exceed ``min_score``
    to be stored, matching the dense engine's storage threshold).

    A CSR input is adopted and normalized *in place* (indices sorted,
    explicit zeros eliminated); pass ``matrix.copy()`` when holding an alias
    whose entry layout must not change.  Other formats are converted, which
    already copies.
    """

    def __init__(self, matrix: sparse.csr_matrix, index: Sequence[Node]) -> None:
        matrix = sparse.csr_matrix(matrix)
        if matrix.shape[0] != matrix.shape[1] or matrix.shape[0] != len(index):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match index of {len(index)} nodes"
            )
        # Explicitly-stored zeros mean nothing to any reader (score() reports
        # missing pairs as 0 anyway), so dropping them once here keeps every
        # count -- len, nonzero_count, pairs() -- a pure nnz read instead of
        # a per-pair Python scan.
        matrix.eliminate_zeros()
        matrix.sort_indices()
        self._matrix = matrix
        self._index: List[Node] = list(index)
        self._pos: Dict[Node, int] = {node: i for i, node in enumerate(self._index)}

    # ----------------------------------------------------------- construction

    @classmethod
    def from_dense(
        cls, matrix: np.ndarray, index: Sequence[Node], min_score: float = 0.0
    ) -> "ArraySimilarityScores":
        """Store built from a dense symmetric similarity matrix.

        Only entries strictly above ``min_score`` are kept; the diagonal is
        discarded (self-scores are implicit 1).  The upper triangle is
        mirrored so both directions carry bit-identical values even when the
        input is only symmetric up to floating-point error.
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.size == 0:
            return cls(sparse.csr_matrix((len(index), len(index))), index)
        upper = np.triu(matrix, k=1)
        upper[upper <= min_score] = 0.0
        half = sparse.csr_matrix(upper)
        return cls(half + half.T, index)

    @classmethod
    def from_sparse(
        cls, matrix: "sparse.spmatrix", index: Sequence[Node], min_score: float = 0.0
    ) -> "ArraySimilarityScores":
        """Store built from a (possibly unsymmetrized) sparse similarity matrix."""
        half = sparse.triu(matrix, k=1, format="csr")
        if half.nnz:
            half.data[half.data <= min_score] = 0.0
            half.eliminate_zeros()
        return cls(half + half.T, index)

    @classmethod
    def stitched(cls, stores: Iterable["ArraySimilarityScores"]) -> "ArraySimilarityScores":
        """One store over the block-diagonal union of node-disjoint stores.

        This is how the sharded backend combines per-component results: the
        block-diagonal structure is exactly the cross-component-zero
        invariant, and no per-pair copying happens at all.
        """
        stores = list(stores)
        if not stores:
            return cls(sparse.csr_matrix((0, 0)), [])
        matrix = sparse.block_diag([store._matrix for store in stores], format="csr")
        index = [node for store in stores for node in store._index]
        return cls(matrix, index)

    # ----------------------------------------------------------------- access

    @property
    def matrix(self) -> sparse.csr_matrix:
        """The underlying symmetric CSR similarity matrix (zero diagonal)."""
        return self._matrix

    @property
    def index(self) -> List[Node]:
        """Node identifier of each matrix row/column."""
        return list(self._index)

    def score(self, first: Node, second: Node) -> float:
        """Similarity of the pair; 1 for identical nodes, 0 when unknown."""
        if first == second:
            return 1.0
        i = self._pos.get(first)
        j = self._pos.get(second)
        if i is None or j is None:
            return 0.0
        start, end = self._matrix.indptr[i], self._matrix.indptr[i + 1]
        columns = self._matrix.indices[start:end]
        at = np.searchsorted(columns, j)
        if at < columns.size and columns[at] == j:
            return float(self._matrix.data[start + at])
        return 0.0

    def neighbors(self, node: Node) -> Dict[Node, float]:
        """All stored similarities involving ``node``."""
        i = self._pos.get(node)
        if i is None:
            return {}
        start, end = self._matrix.indptr[i], self._matrix.indptr[i + 1]
        return {
            self._index[column]: float(value)
            for column, value in zip(
                self._matrix.indices[start:end].tolist(),
                self._matrix.data[start:end].tolist(),
            )
        }

    def top(self, node: Node, k: int = 5, minimum: float = 0.0) -> List[Tuple[Node, float]]:
        """The ``k`` most similar nodes to ``node`` with score above ``minimum``.

        Selection is a vectorized ``numpy`` partition over the node's matrix
        row; only the (at most ``k`` plus boundary ties) surviving candidates
        are boxed into Python objects and sorted with the same deterministic
        ``(-score, repr)`` tie-break as the dict-backed store.
        """
        i = self._pos.get(node)
        if i is None or k <= 0:
            return []
        start, end = self._matrix.indptr[i], self._matrix.indptr[i + 1]
        columns = self._matrix.indices[start:end]
        values = self._matrix.data[start:end]
        above = values > minimum
        columns, values = columns[above], values[above]
        if values.size == 0:
            return []
        if k < values.size:
            # Keep everything at or above the k-th largest value: boundary
            # ties survive the cut so the repr tie-break below stays exact.
            kth = np.partition(values, values.size - k)[values.size - k]
            chosen = values >= kth
            columns, values = columns[chosen], values[chosen]
        candidates = [
            (self._index[column], float(value))
            for column, value in zip(columns.tolist(), values.tolist())
        ]
        candidates.sort(key=lambda pair: (-pair[1], repr(pair[0])))
        return candidates[:k]

    def pairs(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate each stored unordered pair exactly once (upper triangle)."""
        upper = sparse.triu(self._matrix, k=1, format="coo")
        for i, j, value in zip(
            upper.row.tolist(), upper.col.tolist(), upper.data.tolist()
        ):
            yield self._index[i], self._index[j], float(value)

    def nodes(self) -> Iterator[Node]:
        """Nodes that appear in at least one stored pair."""
        row_counts = np.diff(self._matrix.indptr)
        return (self._index[i] for i in np.nonzero(row_counts)[0].tolist())

    def nonzero_count(self) -> int:
        """Number of stored pairs with a non-zero score.

        Explicit zeros are eliminated at construction, so every stored entry
        is non-zero and the count equals the stored pair count -- no per-pair
        Python boxing.
        """
        return len(self)

    # ------------------------------------------------------------------ misc

    def max_difference(self, other) -> float:
        """Largest absolute per-pair difference against another score set.

        Works against any score container exposing ``pairs()`` and
        ``score()`` (the dict-backed :class:`~repro.core.scores
        .SimilarityScores` included); two array stores over the same index
        are compared directly on their matrices.
        """
        if isinstance(other, ArraySimilarityScores) and self._index == other._index:
            difference = abs(self._matrix - other._matrix)
            return float(difference.max()) if difference.nnz else 0.0
        keys = {(a, b) for a, b, _ in self.pairs()} | {(a, b) for a, b, _ in other.pairs()}
        if not keys:
            return 0.0
        return max(abs(self.score(a, b) - other.score(a, b)) for a, b in keys)

    def copy(self) -> "ArraySimilarityScores":
        return ArraySimilarityScores(self._matrix.copy(), self._index)

    def __len__(self) -> int:
        # The matrix is symmetric with zero diagonal by construction, so the
        # stored pair count is exactly half the stored entry count.
        return int(self._matrix.nnz) // 2

    def __repr__(self) -> str:
        return f"ArraySimilarityScores(pairs={len(self)}, nodes={len(self._index)})"
