"""Component-sharded SimRank engine.

Click graphs are highly disconnected in practice: the paper's own experiments
operate on connected-component samples of the Yahoo! click graph ("one huge
connected component and several smaller subgraphs", Section 9.2).  SimRank
scores between nodes in different connected components are provably zero --
the recursive sums only ever traverse edges -- yet :class:`MatrixSimrank`
allocates one dense ``n x n`` similarity matrix over the whole node set and
spends ``O(n^3)`` multiply time per iteration on cross-component blocks that
stay zero forever.

:class:`ShardedSimrank` exploits that structure.  It decomposes the click
graph into connected components (:func:`repro.graph.components
.connected_components`), fits an independent inner engine on each component's
induced subgraph -- :class:`MatrixSimrank` by default, or the pruned sparse
engine (:class:`~repro.core.simrank_sparse.SparseSimrank`) with
``inner_backend="sparse"`` -- and stitches the per-component results into one
:class:`~repro.core.scores_array.ArraySimilarityScores` by block-diagonal
concatenation of the per-component score matrices (cross-component pairs
provably score zero, which is exactly the block structure).  The dense work
therefore shrinks from one ``n x n`` matrix to a block-diagonal family of
``n_k x n_k`` blocks (``sum n_k = n``), which is both asymptotically and
practically faster on multi-component graphs -- see
``benchmarks/bench_sharded_backend.py`` for the >= 2x gate.

Isolated nodes (zero degree) can only self-score, so they are skipped
entirely; ``query_similarity`` still returns 1 for the self-pair and 0
elsewhere via the sparse score container.

Per-component fits are independent, so they can run on a worker pool:
``n_jobs > 1`` fits components on that many workers, ``n_jobs=-1`` uses one
worker per *available* CPU (affinity-aware, see
:func:`repro.core.parallel.available_cpu_count`).  The pool flavour is the
``executor``: ``"thread"`` shares the interpreter (cheap to start, but
GIL-bound outside numpy's released-GIL regions), ``"process"`` fits shard
batches in worker processes for true multi-core scaling (picklable payloads,
warm-start seeds shipped per shard, batches balanced by estimated cost), and
``"auto"`` -- the default -- picks processes only when the estimated work
clearly exceeds the fork/pickle overhead.
"""

from __future__ import annotations

from concurrent.futures import (
    FIRST_EXCEPTION,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core import faults
from repro.core.config import SimrankConfig
from repro.core.parallel import chunk_balanced, pick_executor, resolve_worker_count
from repro.core.scores_array import ArraySimilarityScores
from repro.core.similarity_base import QuerySimilarityMethod
from repro.core.simrank_matrix import MatrixSimrank
from repro.core.simrank_sparse import SparseSimrank
from repro.graph.click_graph import ClickGraph
from repro.graph.components import connected_components

__all__ = ["ShardedSimrank"]

Node = Hashable

_MODES = ("simrank", "evidence", "weighted")

_INNER_BACKENDS = ("matrix", "sparse", "auto")

_EXECUTORS = ("thread", "process", "auto")


class ShardedSimrank(QuerySimilarityMethod):
    """SimRank family computed per connected component and stitched together.

    Exact for the whole SimRank family: plain, evidence-based and weighted
    SimRank all score cross-component pairs zero (the iteration, the evidence
    factors and the spread factors are each local to a component), so the
    stitched scores equal what the dense engine computes on the full graph.
    """

    def __init__(
        self,
        config: Optional[SimrankConfig] = None,
        mode: str = "simrank",
        min_score: float = 1e-9,
        n_jobs: int = 1,
        inner_backend: str = "matrix",
        executor: str = "auto",
    ) -> None:
        super().__init__()
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if n_jobs == 0 or n_jobs < -1:
            raise ValueError(f"n_jobs must be a positive integer or -1, got {n_jobs}")
        if inner_backend not in _INNER_BACKENDS:
            raise ValueError(
                f"inner_backend must be one of {_INNER_BACKENDS}, got {inner_backend!r}"
            )
        if executor not in _EXECUTORS:
            raise ValueError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
        self.config = config or SimrankConfig()
        self.mode = mode
        self.min_score = min_score
        self.n_jobs = n_jobs
        #: Which engine fits each component: dense ``"matrix"`` blocks,
        #: ``"sparse"`` pruned CSR fixpoints (sharded + sparse composes the
        #: two backends' savings on large disconnected graphs), or ``"auto"``
        #: to let the planner pick dense/sparse per shard from its size.
        self.inner_backend = inner_backend
        #: Pool flavour for parallel shard fits; ``"auto"`` picks processes
        #: only when the estimated work amortises the fork/pickle overhead.
        self.executor = executor
        # Report under the same name as the dense and reference engines so
        # experiment tables stay comparable across backends.
        self.name = {
            "simrank": "simrank",
            "evidence": "evidence_simrank",
            "weighted": "weighted_simrank",
        }[mode]
        #: Whether the last fit received a warm-start seed.
        self.warm_started: bool = False
        #: Shards of the last fit reused verbatim from the previous fit
        #: (dirty-component detection) and shards actually refit.
        self.reused_shards: Optional[int] = None
        self.refitted_shards: Optional[int] = None
        self._shard_graphs: List[ClickGraph] = []
        self._shard_methods: List[QuerySimilarityMethod] = []
        self._query_shard: Dict[Node, int] = {}
        self._ad_shard: Dict[Node, int] = {}

    # -------------------------------------------------------------- fit path

    def _compute_query_scores(self, graph: ClickGraph) -> ArraySimilarityScores:
        # A shard fit that raises must not leave the method half-updated:
        # `reused_shards` and the shard tables are mutated below *before*
        # the fits run, so on any failure the pre-fit values are restored
        # wholesale.  Combined with the base class's build-then-publish
        # contract for `_query_scores`, a failed fit leaves the method
        # exactly as it was -- cleanly unfitted on a first fit, or still
        # serving the previous fit on a refit.
        prior_state = (
            self.warm_started,
            self.reused_shards,
            self.refitted_shards,
            self._shard_graphs,
            self._shard_methods,
            self._query_shard,
            self._ad_shard,
        )
        try:
            return self._compute_and_stitch(graph)
        except BaseException:
            (
                self.warm_started,
                self.reused_shards,
                self.refitted_shards,
                self._shard_graphs,
                self._shard_methods,
                self._query_shard,
                self._ad_shard,
            ) = prior_state
            raise

    def _compute_and_stitch(self, graph: ClickGraph) -> ArraySimilarityScores:
        seed = self._warm_start_scores
        self.warm_started = seed is not None
        previous_graphs = self._shard_graphs or []
        previous_methods = self._shard_methods or []
        previous_query_shard = self._query_shard or {}
        previous_ad_shard = self._ad_shard or {}

        components = [
            (queries, ads)
            for queries, ads in connected_components(graph)
            # A component missing one side is a single isolated node: it has
            # no edges, so every score involving it is 0 (or the implicit 1
            # of the self-pair).  Skip it.
            if queries and ads
        ]

        # Dirty-component detection: on a warm-start fit, a component whose
        # node set and adjacency are identical to one of the previous fit's
        # shards is *clean* -- no edge in it changed, so its fixpoint is
        # exactly the previous one and both the fitted inner engine and the
        # induced subgraph are reused verbatim (no rebuild, no refit).  The
        # check reads per-node adjacency straight off the full graph, so
        # clean components cost O(component edges), not an O(all edges)
        # subgraph construction.  Only dirty components (changed, merged,
        # split or new) are refit, each warm-started from the seed scores.
        shard_graphs: List[Optional[ClickGraph]] = [None] * len(components)
        methods: List[Optional[QuerySimilarityMethod]] = [None] * len(components)
        if seed is not None and previous_methods:
            for shard_id, (queries, ads) in enumerate(components):
                previous_id = _single_previous_shard(
                    queries, ads, previous_query_shard, previous_ad_shard
                )
                if previous_id is not None and _component_unchanged(
                    graph, queries, ads, previous_graphs[previous_id]
                ):
                    shard_graphs[shard_id] = previous_graphs[previous_id]
                    methods[shard_id] = previous_methods[previous_id]

        dirty = [shard_id for shard_id, method in enumerate(methods) if method is None]
        for shard_id in dirty:
            queries, ads = components[shard_id]
            shard_graphs[shard_id] = graph.subgraph(queries=queries, ads=ads)
        self.reused_shards = len(components) - len(dirty)
        self.refitted_shards = len(dirty)
        dirty_graphs = [shard_graphs[shard_id] for shard_id in dirty]
        fitted = self._fit_shards(dirty_graphs, _split_seed(seed, dirty_graphs))
        for shard_id, method in zip(dirty, fitted):
            methods[shard_id] = method

        self._shard_graphs = shard_graphs
        self._shard_methods = methods
        self._query_shard = {}
        self._ad_shard = {}
        for shard_id, subgraph in enumerate(self._shard_graphs):
            for query in subgraph.queries():
                self._query_shard[query] = shard_id
            for ad in subgraph.ads():
                self._ad_shard[ad] = shard_id
        # Components are node-disjoint, so the combined score matrix is the
        # block-diagonal of the per-component matrices -- stitched without
        # copying a single pair.
        return ArraySimilarityScores.stitched(
            method.similarities() for method in self._shard_methods
        )

    def _inner_kind(self, subgraph: ClickGraph) -> str:
        """Concrete inner engine ("matrix"/"sparse") for one component."""
        if self.inner_backend != "auto":
            return self.inner_backend
        from repro.core.planner import choose_component_backend

        return choose_component_backend(subgraph.num_nodes, subgraph.num_edges)

    def shard_backends(self) -> List[str]:
        """Concrete inner backend fitted per shard, aligned with shard ids."""
        self._require_fitted()
        methods = self._require_fit_extra(self._shard_methods, "shard decomposition")
        return [
            "sparse" if isinstance(method, SparseSimrank) else "matrix"
            for method in methods
        ]

    def _build_inner(self, subgraph: ClickGraph) -> QuerySimilarityMethod:
        return _build_inner_engine(
            self._inner_kind(subgraph), self.config, self.mode, self.min_score
        )

    def _fit_shards(
        self, subgraphs: List[ClickGraph], seeds: Optional[List] = None
    ) -> List[QuerySimilarityMethod]:
        """Fit one inner engine per component, serially or on a worker pool.

        ``seeds`` optionally aligns one warm-start seed with each subgraph
        (already restricted to that component by :func:`_split_seed`).  A
        failing shard fit cancels the outstanding shard fits and re-raises
        the first error in submission order; the caller restores the
        pre-fit state.
        """
        if seeds is None:
            seeds = [None] * len(subgraphs)
        methods = [self._build_inner(subgraph) for subgraph in subgraphs]
        workers = self._resolve_jobs(len(subgraphs))
        # One fault claim per shard, in shard order, *before* any work is
        # dispatched: central counting keeps "shard.fit" injection
        # deterministic across the serial, thread and process paths (and
        # across retries -- a consumed fault stays consumed).
        actions = [faults.claim("shard.fit") for _ in subgraphs]
        if workers <= 1 or len(subgraphs) <= 1:
            for method, subgraph, seed, action in zip(
                methods, subgraphs, seeds, actions
            ):
                if action is not None:
                    action.execute()
                method.fit(subgraph, initial_scores=seed)
            return methods
        if self._resolve_executor(subgraphs, workers) == "process":
            return self._fit_shards_process(
                methods, subgraphs, seeds, workers, actions
            )
        return self._fit_shards_thread(methods, subgraphs, seeds, workers, actions)

    def _fit_shards_thread(
        self,
        methods: List[QuerySimilarityMethod],
        subgraphs: List[ClickGraph],
        seeds: List,
        workers: int,
        actions: List[Optional[faults.FaultAction]],
    ) -> List[QuerySimilarityMethod]:
        pool = ThreadPoolExecutor(max_workers=workers)
        try:
            futures = [
                pool.submit(_fit_one_shard, method, subgraph, seed, action)
                for method, subgraph, seed, action in zip(
                    methods, subgraphs, seeds, actions
                )
            ]
            # Stop at the first failure instead of draining the whole map:
            # queued sibling fits are cancelled, running ones are joined
            # (threads cannot be interrupted mid-fit).
            pending = wait(futures, return_when=FIRST_EXCEPTION)[1]
            for future in pending:
                future.cancel()
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        _raise_first_error(futures)
        return methods

    def _fit_shards_process(
        self,
        methods: List[QuerySimilarityMethod],
        subgraphs: List[ClickGraph],
        seeds: List,
        workers: int,
        actions: List[Optional[faults.FaultAction]],
    ) -> List[QuerySimilarityMethod]:
        """Fit shard batches in worker processes and collect the fitted engines.

        Shards are packed into at most ``workers`` cost-balanced batches
        (one pickled payload per batch amortises IPC) and each worker
        rebuilds, fits and returns its engines; per-shard warm-start seeds
        travel inside the payload.  The fitted engines replace the local
        placeholders, so callers observe exactly the serial result.

        Injected faults travel the same way: the parent claims them (the
        generic ``shard.fit`` ones handed in by the caller, plus the
        process-only ``shard.fit.worker`` ones -- the channel for
        ``crash=True`` specs, which must kill a *worker*, never the
        serving/fitting process itself) and ships the picklable actions
        inside the batch, where the worker executes them before fitting.
        """
        kinds = [
            "sparse" if isinstance(method, SparseSimrank) else "matrix"
            for method in methods
        ]
        costs = [
            _estimate_shard_cost(kind, subgraph)
            for kind, subgraph in zip(kinds, subgraphs)
        ]
        worker_actions = [faults.claim("shard.fit.worker") for _ in subgraphs]
        chunks = chunk_balanced(costs, workers)
        batches = [
            [
                (
                    kinds[i],
                    self.config,
                    self.mode,
                    self.min_score,
                    subgraphs[i],
                    seeds[i],
                    tuple(
                        action
                        for action in (actions[i], worker_actions[i])
                        if action is not None
                    ),
                )
                for i in chunk
            ]
            for chunk in chunks
        ]
        pool = ProcessPoolExecutor(max_workers=len(batches))
        try:
            futures = [pool.submit(_fit_shard_batch, batch) for batch in batches]
            pending = wait(futures, return_when=FIRST_EXCEPTION)[1]
            for future in pending:
                future.cancel()
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        _raise_first_error(futures)
        for chunk, future in zip(chunks, futures):
            for shard_id, fitted in zip(chunk, future.result()):
                methods[shard_id] = fitted
        return methods

    def _resolve_executor(self, subgraphs: List[ClickGraph], workers: int) -> str:
        if self.executor != "auto":
            return self.executor
        return pick_executor([subgraph.num_nodes for subgraph in subgraphs], workers)

    def _resolve_jobs(self, num_shards: int) -> int:
        # Affinity-aware: n_jobs=-1 sizes from the CPUs this process may
        # actually run on, not the machine's total core count.
        return resolve_worker_count(self.n_jobs, num_shards)

    # ---------------------------------------------------------------- access

    def restore(self, scores, graph=None) -> "ShardedSimrank":
        """Adopt precomputed query scores; the shard decomposition is fit-only.

        Snapshots persist the stitched query scores, not the per-component
        structure, so the shard accessors of a restored engine raise a clear
        error instead of reporting an empty (zero-shard) decomposition.
        """
        super().restore(scores, graph)
        self.warm_started = False
        self.reused_shards = None
        self.refitted_shards = None
        self._shard_graphs = None
        self._shard_methods = None
        self._query_shard = None
        self._ad_shard = None
        return self

    @property
    def num_shards(self) -> int:
        """Number of connected components that carried at least one edge."""
        self._require_fitted()
        return len(self._require_fit_extra(self._shard_graphs, "shard decomposition"))

    def shard_graphs(self) -> List[ClickGraph]:
        """The induced component subgraphs, largest first."""
        self._require_fitted()
        return list(self._require_fit_extra(self._shard_graphs, "shard decomposition"))

    def shard_sizes(self) -> List[int]:
        """Node count per shard, largest first (Table 5-style reporting)."""
        self._require_fitted()
        shard_graphs = self._require_fit_extra(self._shard_graphs, "shard decomposition")
        return [subgraph.num_nodes for subgraph in shard_graphs]

    def shard_of(self, query: Node) -> Optional[int]:
        """Index of the shard containing a query (None for unknown/isolated)."""
        self._require_fitted()
        query_shard = self._require_fit_extra(self._query_shard, "shard decomposition")
        return query_shard.get(query)

    def ad_similarity(self, first: Node, second: Node) -> float:
        """Similarity of two ads under the same per-component fixpoints."""
        self._require_fitted()
        ad_shard = self._require_fit_extra(self._ad_shard, "ad-side scores")
        if first == second:
            return 1.0
        shard = ad_shard.get(first)
        if shard is None or shard != ad_shard.get(second):
            return 0.0
        return self._shard_methods[shard].ad_similarity(first, second)


def _build_inner_engine(
    kind: str, config: SimrankConfig, mode: str, min_score: float
) -> QuerySimilarityMethod:
    """Construct one concrete inner engine (shared with process workers)."""
    if kind == "sparse":
        # Honour both thresholds: the sharded storage cutoff and the
        # config's truncation epsilon (whichever is stricter).
        return SparseSimrank(
            config=config,
            mode=mode,
            min_score=max(min_score, config.prune_threshold),
        )
    return MatrixSimrank(config=config, mode=mode, min_score=min_score)


def _fit_one_shard(
    method: QuerySimilarityMethod,
    subgraph: ClickGraph,
    seed,
    action: Optional[faults.FaultAction],
) -> QuerySimilarityMethod:
    """Thread-pool task body: execute any claimed fault, then fit the shard."""
    if action is not None:
        action.execute()
    return method.fit(subgraph, initial_scores=seed)


def _fit_shard_batch(batch: List[Tuple]) -> List[QuerySimilarityMethod]:
    """Process-pool worker: rebuild, fit and return one batch of inner engines.

    Module-level (and fed only picklable payloads) so it can cross the
    process boundary: each payload is ``(kind, config, mode, min_score,
    subgraph, seed, fault_actions)`` and the fitted engines -- graph,
    scores and all -- are pickled back to the parent, where they serve
    exactly like thread-fitted ones.  Fault actions were claimed in the
    parent (central, deterministic counting) and execute here, in the
    worker -- ``crash=True`` actions take down this process, which the
    parent pool surfaces as ``BrokenProcessPool``.
    """
    fitted = []
    for kind, config, mode, min_score, subgraph, seed, shard_faults in batch:
        for action in shard_faults:
            action.execute()
        method = _build_inner_engine(kind, config, mode, min_score)
        method.fit(subgraph, initial_scores=seed)
        fitted.append(method)
    return fitted


def _estimate_shard_cost(kind: str, subgraph: ClickGraph) -> float:
    """Relative cost estimate used to balance shard batches across workers.

    The dense engine's per-iteration cost scales with ``n^3`` (full matrix
    products); the sparse engine's tracks the nonzero structure, for which
    ``edges * nodes`` is a serviceable proxy.  Only the *ratios* matter.
    """
    nodes = float(subgraph.num_nodes)
    if kind == "sparse":
        return max(float(subgraph.num_edges) * nodes, 1.0)
    return max(nodes**3, 1.0)


def _raise_first_error(futures) -> None:
    """Re-raise the first (submission-order) error of a completed pool run."""
    for future in futures:
        if future.cancelled():
            continue
        error = future.exception()
        if error is not None:
            raise error


def _single_previous_shard(
    queries,
    ads,
    previous_query_shard: Dict[Node, int],
    previous_ad_shard: Dict[Node, int],
) -> Optional[int]:
    """The one previous shard this component's nodes all belonged to, if any.

    ``None`` when the nodes span several previous shards (components merged)
    or include nodes the previous fit never saw (new queries/ads) -- such a
    component cannot be clean.  A single candidate is only a *candidate*:
    the caller still verifies the component's adjacency is unchanged, so
    edge-stat changes and splits within one previous shard are caught there.
    """
    candidate: Optional[int] = None
    for query in queries:
        shard = previous_query_shard.get(query)
        if shard is None or (candidate is not None and shard != candidate):
            return None
        candidate = shard
    for ad in ads:
        shard = previous_ad_shard.get(ad)
        if shard is None or shard != candidate:
            return None
    return candidate


def _split_seed(seed, subgraphs: List[ClickGraph]) -> Optional[List]:
    """One warm-start seed per dirty component, sliced from the global seed.

    Handing every inner fit the full stitched seed would make each of them
    remap the *whole* previous score store (``_seed_triplets`` scans all
    stored entries), turning a warm fit into O(dirty components x total
    pairs).  An array-backed seed is instead partitioned here with one pass
    over its index plus per-component row/column slices, so each inner fit
    only ever touches its own component's scores.  Components with no seeded
    node get ``None`` (a plain cold inner fit).  Dict-backed seeds pass
    through whole: the reference store's per-pair lookups are already local.
    """
    if seed is None or not subgraphs:
        return None
    matrix = getattr(seed, "matrix", None)
    index = getattr(seed, "index", None)
    if matrix is None or index is None:
        return [seed] * len(subgraphs)
    shard_of: Dict[Node, int] = {}
    for shard_id, subgraph in enumerate(subgraphs):
        for query in subgraph.queries():  # seeds hold query-side scores only
            shard_of[query] = shard_id
    positions: List[List[int]] = [[] for _ in subgraphs]
    nodes: List[List[Node]] = [[] for _ in subgraphs]
    for position, node in enumerate(index):
        shard_id = shard_of.get(node)
        if shard_id is not None:
            positions[shard_id].append(position)
            nodes[shard_id].append(node)
    seeds = []
    for shard_id in range(len(subgraphs)):
        if positions[shard_id]:
            block = matrix[positions[shard_id]][:, positions[shard_id]]
            seeds.append(ArraySimilarityScores(block.tocsr(), nodes[shard_id]))
        else:
            seeds.append(None)
    return seeds


def _component_unchanged(
    graph: ClickGraph, queries, ads, previous_shard: ClickGraph
) -> bool:
    """Whether a component of ``graph`` equals a previous induced shard.

    Same node sets and, for every query, the same incident edges with the
    same statistics.  Comparing the query-side adjacency alone covers every
    edge (the graph is bipartite), and reading rows off the full graph is
    sound because a component's edges never leave it.
    """
    if set(previous_shard.queries()) != queries or set(previous_shard.ads()) != ads:
        return False
    return all(
        graph.ads_of(query) == previous_shard.ads_of(query) for query in queries
    )
