"""Evidence-based SimRank (paper Section 7).

The evidence-based similarity of two queries after ``k`` SimRank iterations
is the plain SimRank score multiplied by the evidence factor of the pair
(Equations 7.5 / 7.6):

.. math::

   s_{evidence}(q, q') = evidence(q, q') \\cdot s(q, q')

Only pairs with at least one common neighbour receive a positive evidence
factor; pairs related purely through longer paths keep evidence 0 under the
paper's definition, which is what Theorem 7.1 relies on.  (Because the paper
also reports evidence-based SimRank covering *more* queries than plain
SimRank, :class:`EvidenceSimrank` exposes ``zero_evidence_floor`` to keep a
small fraction of the structural score for such pairs; the default of 0 is
the faithful behaviour.)
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from repro.core.config import SimrankConfig
from repro.core.evidence import evidence_score
from repro.core.scores import SimilarityScores
from repro.core.similarity_base import QuerySimilarityMethod
from repro.core.simrank import BipartiteSimrank, SimrankResult
from repro.graph.click_graph import ClickGraph

__all__ = ["EvidenceSimrank"]

Node = Hashable


class EvidenceSimrank(QuerySimilarityMethod):
    """SimRank scores rescaled by the evidence of each pair."""

    name = "evidence_simrank"

    def __init__(
        self,
        config: Optional[SimrankConfig] = None,
        track_history: bool = False,
        zero_evidence_floor: Optional[float] = None,
        max_pairs: int = 2_000_000,
    ) -> None:
        super().__init__()
        self.config = config or SimrankConfig()
        self.track_history = track_history
        self.zero_evidence_floor = (
            self.config.zero_evidence_floor if zero_evidence_floor is None else zero_evidence_floor
        )
        self.max_pairs = max_pairs
        self._simrank: Optional[BipartiteSimrank] = None
        self._ad_scores: Optional[SimilarityScores] = None
        self._query_history: List[SimilarityScores] = []

    # -------------------------------------------------------------- fit path

    def _compute_query_scores(self, graph: ClickGraph) -> SimilarityScores:
        self._simrank = BipartiteSimrank(
            config=self.config, track_history=self.track_history, max_pairs=self.max_pairs
        )
        # A warm-start seed passes straight through to the inner SimRank.
        # The seed is evidence-scaled (this method's similarities() applies
        # the evidence factor on top of the plain fixpoint) and therefore a
        # less warm starting point than for the other modes -- still valid,
        # since the contraction converges from anywhere.
        self._simrank.fit(graph, initial_scores=self._warm_start_scores)
        result = self._simrank.result

        query_scores = self._apply_evidence(graph, result.query_scores, side="query")
        self._ad_scores = self._apply_evidence(graph, result.ad_scores, side="ad")
        self._query_history = [
            self._apply_evidence(graph, snapshot, side="query")
            for snapshot in result.query_history
        ]
        return query_scores

    # ---------------------------------------------------------------- access

    def restore(self, scores, graph=None) -> "EvidenceSimrank":
        """Adopt precomputed query scores; sub-result and traces are fit-only."""
        super().restore(scores, graph)
        self._simrank = None
        self._ad_scores = None
        self._query_history = []
        return self

    @property
    def simrank_result(self) -> SimrankResult:
        """The underlying plain-SimRank result (before evidence scaling)."""
        self._require_fitted()
        return self._require_fit_extra(
            self._simrank, "plain-SimRank sub-result"
        ).result

    @property
    def query_history(self) -> List[SimilarityScores]:
        """Per-iteration evidence-based query scores (Table 4)."""
        self._require_fitted()
        # The inner SimRank marks genuine fit state: on a snapshot-restored
        # engine an empty list would be indistinguishable from tracking
        # having been off, so fail loudly instead.
        self._require_fit_extra(self._simrank, "iteration history")
        return list(self._query_history)

    def ad_similarity(self, first: Node, second: Node) -> float:
        """Evidence-based similarity of two ads."""
        self._require_fitted()
        return self._require_fit_extra(self._ad_scores, "ad-side scores").score(
            first, second
        )

    # ------------------------------------------------------------- internals

    def _apply_evidence(
        self, graph: ClickGraph, scores: SimilarityScores, side: str
    ) -> SimilarityScores:
        scaled = SimilarityScores()
        for first, second, value in scores.pairs():
            if side == "query":
                common = len(set(graph.ads_of(first)) & set(graph.ads_of(second)))
            else:
                common = len(set(graph.queries_of(first)) & set(graph.queries_of(second)))
            factor = evidence_score(common, self.config.evidence)
            if common == 0:
                factor = self.zero_evidence_floor
            scaled_value = value * factor
            if scaled_value != 0.0:
                scaled.set(first, second, scaled_value)
        return scaled
