"""Warm-start seeds: previous similarity scores as Jacobi starting points.

The SimRank family computes its fixpoint by Jacobi iteration, and the map is
a contraction (decay factors below 1), so the iteration converges from *any*
starting point -- the identity start merely needs the most iterations.  When
a fit follows a small perturbation of an already-fitted graph (the
incremental-refresh path of :meth:`repro.api.engine.RewriteEngine.refresh`),
the previous scores are an excellent starting point: with tolerance-based
early exit enabled (``SimrankConfig.tolerance``), a warm-started fit
converges in a handful of iterations instead of re-propagating similarity
from scratch.

These helpers turn a previous score store -- array-backed
(:class:`~repro.core.scores_array.ArraySimilarityScores`) or dict-backed
(:class:`~repro.core.scores.SimilarityScores`), e.g. one revived from an
engine snapshot -- into the backend's native seed structure over the *new*
fit's node index.  Nodes absent from the previous scores start at the
identity (new queries know nothing yet); previous nodes absent from the new
index are dropped.

Only the query side is ever seeded: snapshots persist nothing else, and the
ad side does not need it -- each backend derives its ad-side seed by one
application of the ad update to the seeded query scores, which lands both
sides near the fixpoint together.  (Seeding one side alone while the other
starts at the identity would be useless: the Jacobi alternation recomputes
each side from the other, so the identity side's error would wash the seed
out and convergence would take as long as a cold start.)
"""

from __future__ import annotations

from typing import Dict, Hashable, Sequence, Tuple

import numpy as np
from scipy import sparse

__all__ = ["seed_dense", "seed_csr", "seed_pair_scores"]

Node = Hashable
Pair = Tuple[Node, Node]


def _seed_triplets(initial_scores, position: Dict[Node, int]):
    """Stored score entries remapped into the new index as COO triplets.

    Both directions of every surviving pair are returned (the stores are
    symmetric).  Entries involving a node outside ``position`` are dropped.
    """
    matrix = getattr(initial_scores, "matrix", None)
    old_index = getattr(initial_scores, "index", None)
    if matrix is not None and old_index is not None:
        # Array-backed store: vectorized remap of the CSR entries.
        old_to_new = np.full(len(old_index), -1, dtype=np.int64)
        for old_position, node in enumerate(old_index):
            new_position = position.get(node)
            if new_position is not None:
                old_to_new[old_position] = new_position
        coo = matrix.tocoo()
        keep = (old_to_new[coo.row] >= 0) & (old_to_new[coo.col] >= 0)
        return old_to_new[coo.row[keep]], old_to_new[coo.col[keep]], coo.data[keep]
    rows = []
    columns = []
    data = []
    for first, second, value in initial_scores.pairs():
        i = position.get(first)
        j = position.get(second)
        if i is None or j is None:
            continue
        rows.extend((i, j))
        columns.extend((j, i))
        data.extend((value, value))
    return (
        np.asarray(rows, dtype=np.int64),
        np.asarray(columns, dtype=np.int64),
        np.asarray(data, dtype=float),
    )


def seed_dense(initial_scores, index: Sequence[Node]) -> np.ndarray:
    """Dense similarity seed over ``index`` (unit diagonal, prior off-diagonals)."""
    position = {node: i for i, node in enumerate(index)}
    rows, columns, data = _seed_triplets(initial_scores, position)
    seed = np.zeros((len(index), len(index)))
    seed[rows, columns] = data
    np.fill_diagonal(seed, 1.0)
    return seed


def seed_csr(initial_scores, index: Sequence[Node]) -> sparse.csr_matrix:
    """Sparse CSR similarity seed over ``index`` (unit diagonal included)."""
    n = len(index)
    position = {node: i for i, node in enumerate(index)}
    rows, columns, data = _seed_triplets(initial_scores, position)
    off_diagonal = sparse.csr_matrix((data, (rows, columns)), shape=(n, n))
    return (off_diagonal + sparse.identity(n, format="csr")).tocsr()


def seed_pair_scores(initial_scores, pairs: Sequence[Pair]) -> Dict[Pair, float]:
    """Per-pair seed dict for the reference (node-pair) engines."""
    return {
        (first, second): initial_scores.score(first, second)
        for first, second in pairs
    }
