"""Container for pairwise similarity scores.

All similarity methods in :mod:`repro.core` return a :class:`SimilarityScores`
object: a symmetric sparse map from node pairs to scores with convenient
ranking helpers.  Scores of a node with itself are implicitly 1 and never
stored; missing pairs score 0.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterator, List, Tuple

__all__ = ["SimilarityScores"]

Node = Hashable


class SimilarityScores:
    """Symmetric sparse node-pair similarity scores."""

    def __init__(self, scores: Dict[Tuple[Node, Node], float] = None) -> None:
        self._by_node: Dict[Node, Dict[Node, float]] = {}
        if scores:
            for (first, second), value in scores.items():
                self.set(first, second, value)

    # --------------------------------------------------------------- mutation

    def set(self, first: Node, second: Node, value: float) -> None:
        """Set the similarity of an unordered pair (ignored for identical nodes)."""
        if first == second:
            return
        self._by_node.setdefault(first, {})[second] = value
        self._by_node.setdefault(second, {})[first] = value

    def discard(self, first: Node, second: Node) -> None:
        """Remove a stored pair if present."""
        if first in self._by_node:
            self._by_node[first].pop(second, None)
        if second in self._by_node:
            self._by_node[second].pop(first, None)

    # ----------------------------------------------------------------- access

    def score(self, first: Node, second: Node) -> float:
        """Similarity of the pair; 1 for identical nodes, 0 when unknown."""
        if first == second:
            return 1.0
        return self._by_node.get(first, {}).get(second, 0.0)

    def neighbors(self, node: Node) -> Dict[Node, float]:
        """All stored similarities involving ``node``."""
        return dict(self._by_node.get(node, {}))

    def top(self, node: Node, k: int = 5, minimum: float = 0.0) -> List[Tuple[Node, float]]:
        """The ``k`` most similar nodes to ``node`` with score above ``minimum``.

        Ties are broken deterministically by the textual representation of
        the node identifier so experiments are reproducible.  Selection is a
        bounded heap (``O(n log k)``), not a full ``O(n log n)`` sort of the
        row -- rows are long, ``k`` is the rewrite depth.
        """
        candidates = (
            (other, value)
            for other, value in self._by_node.get(node, {}).items()
            if value > minimum
        )
        # nsmallest under the (-score, repr) key is exactly the old full
        # sort's order: descending score, ascending repr on ties.
        return heapq.nsmallest(k, candidates, key=lambda pair: (-pair[1], repr(pair[0])))

    def pairs(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate each stored unordered pair exactly once.

        Every pair is stored under both endpoints, so yielding a row entry
        only when the row's node was inserted before the neighbour visits
        each unordered pair exactly once -- without the ``repr()`` strings
        and the per-call ``emitted`` set this used to allocate.
        """
        position = {node: order for order, node in enumerate(self._by_node)}
        for first, row in self._by_node.items():
            first_position = position[first]
            for second, value in row.items():
                if first_position < position[second]:
                    yield first, second, value

    def nodes(self) -> Iterator[Node]:
        """Nodes that appear in at least one stored pair."""
        return iter(self._by_node)

    def nonzero_count(self) -> int:
        """Number of stored pairs with a non-zero score."""
        return sum(1 for _, _, value in self.pairs() if value != 0.0)

    # ------------------------------------------------------------- conversion

    def to_array(self) -> "ArraySimilarityScores":
        """The same scores as an array-backed store (CSR matrix + node index).

        This is how dict-backed results enter the engine-snapshot format
        (:mod:`repro.api.snapshot`): the matrix carries the exact float
        values in both directions, so serving reads off the converted store
        are identical to reads off this one.
        """
        from scipy import sparse

        from repro.core.scores_array import ArraySimilarityScores

        index = sorted(self._by_node, key=repr)
        position = {node: i for i, node in enumerate(index)}
        rows: List[int] = []
        columns: List[int] = []
        data: List[float] = []
        for first, second, value in self.pairs():
            i, j = position[first], position[second]
            rows.extend((i, j))
            columns.extend((j, i))
            data.extend((value, value))
        matrix = sparse.csr_matrix(
            (data, (rows, columns)), shape=(len(index), len(index))
        )
        return ArraySimilarityScores(matrix, index)

    @classmethod
    def from_array(cls, scores: "ArraySimilarityScores") -> "SimilarityScores":
        """Dict-backed copy of an array-backed store (snapshot loading).

        Pairs explicitly stored as zero do not survive the round trip (the
        array store eliminates them at construction); every reader treats
        missing and zero pairs identically, so no observable score changes.
        """
        clone = cls()
        for first, second, value in scores.pairs():
            clone.set(first, second, value)
        return clone

    # ------------------------------------------------------------------ misc

    def max_difference(self, other: "SimilarityScores") -> float:
        """Largest absolute per-pair difference against another score set."""
        keys = {(a, b) for a, b, _ in self.pairs()} | {(a, b) for a, b, _ in other.pairs()}
        if not keys:
            return 0.0
        return max(abs(self.score(a, b) - other.score(a, b)) for a, b in keys)

    def copy(self) -> "SimilarityScores":
        clone = SimilarityScores()
        for first, second, value in self.pairs():
            clone.set(first, second, value)
        return clone

    def scaled_by(self, factors: Dict[Tuple[Node, Node], float]) -> "SimilarityScores":
        """New score set with each stored pair multiplied by a per-pair factor.

        Pairs absent from ``factors`` keep their score (factor 1).
        """
        scaled = SimilarityScores()
        for first, second, value in self.pairs():
            factor = factors.get((first, second), factors.get((second, first), 1.0))
            scaled.set(first, second, value * factor)
        return scaled

    def __len__(self) -> int:
        return sum(1 for _ in self.pairs())

    def __repr__(self) -> str:
        return f"SimilarityScores(pairs={len(self)})"
