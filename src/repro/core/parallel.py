"""Shared worker-pool sizing and work-chunking helpers.

Every pool in the codebase -- the sharded fitter's thread and process tiers
(:mod:`repro.core.simrank_sharded`) and the serving executors
(:mod:`repro.serving.server`) -- sizes itself through
:func:`available_cpu_count`.  The distinction matters in containers:
``os.cpu_count()`` reports the *machine's* cores, while cgroup CPU affinity
(the way CI runners and serving pods are actually restricted) caps the
process to a subset.  Sizing ``n_jobs=-1`` from ``cpu_count()`` there
oversubscribes the pool -- more threads/processes than schedulable CPUs --
which at best thrashes and at worst hides the restriction from benchmarks.
``len(os.sched_getaffinity(0))`` reads the schedulable set directly where
the platform provides it (Linux), with ``cpu_count()`` as the portable
fallback.

:func:`chunk_balanced` packs per-shard work into a bounded number of batches
for the process-pool tier: one pickled payload per *batch* rather than per
shard amortises inter-process transfer, and greedy longest-processing-time
assignment keeps the batches' estimated costs even so no worker becomes the
straggler.
"""

from __future__ import annotations

import os
from typing import List, Sequence

__all__ = [
    "available_cpu_count",
    "resolve_worker_count",
    "chunk_balanced",
    "pick_executor",
]


def available_cpu_count() -> int:
    """Number of CPUs this process may actually run on (never < 1).

    Prefers the scheduling affinity mask (honours cgroup/affinity limits in
    containers); falls back to :func:`os.cpu_count` on platforms without
    ``sched_getaffinity`` (macOS, Windows).
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


def resolve_worker_count(n_jobs: int, num_tasks: int) -> int:
    """Pool size for ``n_jobs`` over ``num_tasks`` independent tasks.

    ``n_jobs=-1`` means one worker per *available* CPU (see
    :func:`available_cpu_count`); any positive request is honoured as given.
    Either way the pool is never wider than the number of tasks, and never
    smaller than 1.
    """
    if n_jobs == 0 or n_jobs < -1:
        raise ValueError(f"n_jobs must be a positive integer or -1, got {n_jobs}")
    workers = available_cpu_count() if n_jobs == -1 else n_jobs
    return min(workers, max(num_tasks, 1))


def chunk_balanced(costs: Sequence[float], num_chunks: int) -> List[List[int]]:
    """Partition task indices into <= ``num_chunks`` cost-balanced batches.

    Greedy longest-processing-time: tasks are assigned in decreasing cost
    order to the currently lightest batch, which keeps the makespan within
    4/3 of optimal -- plenty for shard batches whose costs are themselves
    estimates.  Empty batches are dropped, and returned batches preserve no
    particular order (callers track indices, not positions).
    """
    if num_chunks < 1:
        raise ValueError(f"num_chunks must be >= 1, got {num_chunks}")
    chunks: List[List[int]] = [[] for _ in range(min(num_chunks, len(costs)))]
    if not chunks:
        return []
    loads = [0.0] * len(chunks)
    for index in sorted(range(len(costs)), key=lambda i: -costs[i]):
        lightest = loads.index(min(loads))
        chunks[lightest].append(index)
        loads[lightest] += costs[index]
    return [chunk for chunk in chunks if chunk]


#: Estimated per-fit work (in squared-node units, see :func:`pick_executor`)
#: below which forking a process pool costs more than it saves.  A dense fit
#: on a few hundred nodes takes single-digit milliseconds; process start-up
#: plus pickling the subgraphs and fitted scores is of the same order, so
#: processes only pay off once the per-fit compute clearly dominates.
PROCESS_WORK_THRESHOLD = 500_000


def pick_executor(node_counts: Sequence[int], workers: int) -> str:
    """Choose ``"thread"`` or ``"process"`` for a batch of per-shard fits.

    Threads are free to start but GIL-bound outside numpy's released-GIL
    regions; processes scale with cores but pay fork + pickle overhead per
    fit.  The estimated total work ``sum(n_k^2)`` (the per-iteration cost
    scale of both the dense and sparse inner engines) decides: below
    :data:`PROCESS_WORK_THRESHOLD` the overhead dominates and threads win.
    """
    if workers <= 1 or len(node_counts) <= 1:
        return "thread"
    total_work = sum(float(count) ** 2 for count in node_counts)
    return "process" if total_work >= PROCESS_WORK_THRESHOLD else "thread"
