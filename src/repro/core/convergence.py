"""Convergence diagnostics for the SimRank iterations.

SimRank's fixpoint iteration converges geometrically: the scores after ``k``
iterations are within ``C^{k+1} / (1 - C)``-style bounds of the exact
solution (Jeh & Widom).  These helpers quantify how far a run got and how
many iterations a target accuracy needs, which matters because the paper's
central observation (Section 6) is precisely about what happens when the
iteration count is small.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.scores import SimilarityScores

__all__ = [
    "iteration_deltas",
    "iterations_for_accuracy",
    "theoretical_residual_bound",
    "has_converged",
]


def iteration_deltas(history: Sequence[SimilarityScores]) -> List[float]:
    """Largest per-pair change between consecutive iteration snapshots."""
    deltas: List[float] = []
    for previous, current in zip(history, history[1:]):
        deltas.append(current.max_difference(previous))
    return deltas


def has_converged(history: Sequence[SimilarityScores], tolerance: float) -> bool:
    """Whether the last recorded iteration changed scores by less than ``tolerance``."""
    if len(history) < 2:
        return False
    return history[-1].max_difference(history[-2]) < tolerance


def theoretical_residual_bound(c: float, iterations: int) -> float:
    """Upper bound on the distance of iteration-``k`` scores from the fixpoint.

    For decay factor ``c`` the per-iteration contraction gives the classical
    ``c^{k+1} / (1 - c)`` bound (``inf`` when ``c == 1``, where the iteration
    may not contract).
    """
    if not 0 < c <= 1:
        raise ValueError(f"c must be in (0, 1], got {c}")
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    if c == 1.0:
        return float("inf")
    return c ** (iterations + 1) / (1.0 - c)


def iterations_for_accuracy(c: float, epsilon: float) -> int:
    """Smallest iteration count whose theoretical residual bound is below ``epsilon``."""
    if not 0 < c < 1:
        raise ValueError(f"c must be in (0, 1), got {c}")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    iterations = 0
    while theoretical_residual_bound(c, iterations) >= epsilon:
        iterations += 1
        if iterations > 10_000:
            raise RuntimeError("accuracy target unreachable within 10000 iterations")
    return iterations
