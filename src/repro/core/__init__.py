"""Core query-similarity algorithms (the paper's contribution).

* :class:`BipartiteSimrank` -- plain bipartite SimRank (Jeh & Widom), Section 4.
* :class:`EvidenceSimrank` -- evidence-based SimRank, Section 7.
* :class:`WeightedSimrank` -- weighted SimRank / "Simrank++", Section 8.
* :class:`PearsonSimilarity` -- the Pearson-correlation baseline, Section 9.1.
* :mod:`repro.core.baselines` -- naive common-ad counting (Table 1) and extra
  comparators (Jaccard, cosine).
* :mod:`repro.core.complete_bipartite` -- closed-form scores on complete
  bipartite graphs (Theorems A.1-B.3), used as test oracles.
* :class:`MatrixSimrank` / :class:`ShardedSimrank` / :class:`SparseSimrank`
  -- the same SimRank fixpoints computed with dense linear algebra over the
  whole graph, per connected component on block-diagonal structures, or on
  pruned ``scipy.sparse`` CSR matrices whose cost tracks the nonzeros (the
  fast backends for the huge-but-sparse click graphs of practice).
* :class:`QueryRewriter` -- the sponsored-search front-end that turns
  similarity scores into filtered, ranked query rewrites (Section 9.3).
"""

from repro.core.baselines import (
    CommonAdSimilarity,
    CosineSimilarity,
    JaccardSimilarity,
    common_ad_count,
)
from repro.core.complete_bipartite import (
    evidence_simrank_k22_score,
    simrank_k12_score,
    simrank_k22_score,
    simrank_km2_scores,
)
from repro.core.config import EvidenceKind, SimrankConfig
from repro.core.evidence import (
    common_neighbor_count,
    evidence_exponential,
    evidence_geometric,
    evidence_score,
)
from repro.core.evidence_simrank import EvidenceSimrank
from repro.core.hybrid import HybridSimilarity, TextSimilarity, text_similarity
from repro.core.pearson import PearsonSimilarity, pearson_similarity
from repro.core.registry import available_methods, create_method
from repro.core.rewriter import CandidateDecision, QueryRewriter, Rewrite, RewriteList
from repro.core.scores import SimilarityScores
from repro.core.scores_array import ArraySimilarityScores
from repro.core.simrank import BipartiteSimrank, SimrankResult
from repro.core.simrank_matrix import MatrixSimrank
from repro.core.simrank_sharded import ShardedSimrank
from repro.core.simrank_sparse import SparseSimrank
from repro.core.similarity_base import QuerySimilarityMethod
from repro.core.weighted_simrank import WeightedSimrank, spread, transition_factors

__all__ = [
    "CommonAdSimilarity",
    "CosineSimilarity",
    "JaccardSimilarity",
    "common_ad_count",
    "evidence_simrank_k22_score",
    "simrank_k12_score",
    "simrank_k22_score",
    "simrank_km2_scores",
    "EvidenceKind",
    "SimrankConfig",
    "common_neighbor_count",
    "evidence_exponential",
    "evidence_geometric",
    "evidence_score",
    "EvidenceSimrank",
    "HybridSimilarity",
    "TextSimilarity",
    "text_similarity",
    "PearsonSimilarity",
    "pearson_similarity",
    "available_methods",
    "create_method",
    "CandidateDecision",
    "QueryRewriter",
    "Rewrite",
    "RewriteList",
    "SimilarityScores",
    "ArraySimilarityScores",
    "BipartiteSimrank",
    "SimrankResult",
    "MatrixSimrank",
    "ShardedSimrank",
    "SparseSimrank",
    "QuerySimilarityMethod",
    "WeightedSimrank",
    "spread",
    "transition_factors",
]
