"""Deterministic, seedable fault injection for the serving/refresh path.

The serving tier's resilience claims (deadlines, retried refreshes, the
circuit breaker, degraded-mode health -- :mod:`repro.serving.resilience`)
are only claims until something actually fails.  This module provides the
something: named **fault points** compiled into the hot paths -- snapshot
IO, shard-fit workers, delta apply, engine refresh, request handling --
that are no-ops until a :class:`FaultPlan` is activated, at which point
they inject exceptions, added latency, partial/corrupt writes, or
worker-process crashes exactly where and as often as the plan says.

Design constraints, in order:

1. **Zero overhead when inactive.**  :func:`fire`/:func:`claim` load one
   module global and return on ``None`` -- no allocation, no locking, no
   string formatting.  The chaos gate
   (``benchmarks/bench_chaos_serving.py``) measures this.
2. **Deterministic.**  Activation is counted centrally per point under a
   lock; a spec fires on exact hit windows (``after`` <= hit index, at
   most ``times`` firings), never on probabilities, so a failing chaos
   run replays identically.
3. **Crosses process boundaries explicitly.**  Plans live in the process
   that activated them.  Sites that hand work to worker processes (the
   sharded fitter's process pool) *claim* the pending
   :class:`FaultAction` in the parent -- consuming the central counter --
   and ship the picklable action to the worker, which executes it there.
   That is how ``shard.fit.worker`` crash faults kill an actual worker
   process while retries in the parent see the fault already consumed.

Usage::

    from repro.core import faults

    plan = faults.FaultPlan([
        faults.FaultSpec("engine.refresh", error="injected outage", times=2),
        faults.FaultSpec("shard.fit", latency_s=0.2),
    ])
    with plan:                       # activate for this block
        ...                          # first two refreshes now raise
    plan.fired                       # what actually triggered, in order

Instrumented points (grep for ``faults.fire`` / ``faults.claim``):

===================== ====================================================
``snapshot.write``     :func:`repro.api.snapshot.write_snapshot` entry;
                       ``corrupt=True`` specs truncate the staged score
                       matrix so the *published* snapshot is corrupt (a
                       torn write that made it to disk).
``snapshot.read``      :func:`repro.api.snapshot.read_snapshot` entry.
``delta.apply``        in :meth:`repro.api.engine.RewriteEngine.refresh`,
                       immediately before the graph mutation (the graph
                       layer cannot import :mod:`repro.core` back).
``engine.refresh``     :meth:`repro.api.engine.RewriteEngine.refresh`.
``shard.fit``          per shard in the sharded fitter, all executors.
``shard.fit.worker``   per shard, **process executor only** -- the action
                       executes inside the worker process, so
                       ``crash=True`` kills a real worker (the parent
                       sees ``BrokenProcessPool``).
``serving.request``    request routing in the HTTP server.
``serving.compute``    the executor-thread batch compute (inject latency
                       here to trip per-request deadlines).
===================== ====================================================
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "FAULT_POINTS",
    "FaultError",
    "FaultSpec",
    "FaultAction",
    "FaultPlan",
    "FaultEvent",
    "FaultSchedule",
    "activate",
    "deactivate",
    "active_plan",
    "injected",
    "fire",
    "claim",
    "should_corrupt",
]

#: The authoritative registry of instrumented fault points (the module
#: docstring's table, in executable form).  The static analyzer's RL004
#: checker keeps it honest in both directions: every ``faults.fire`` /
#: ``faults.claim`` / ``faults.should_corrupt`` site in the ``repro``
#: package must use a name listed here, and every name listed here must
#: have at least one site.  Keep this a literal ``frozenset({...})`` of
#: strings -- the checker reads it from the AST, not by importing.
FAULT_POINTS = frozenset(
    {
        "snapshot.write",
        "snapshot.read",
        "delta.apply",
        "engine.refresh",
        "shard.fit",
        "shard.fit.worker",
        "serving.request",
        "serving.compute",
    }
)


class FaultError(RuntimeError):
    """The exception injected ``error`` faults raise at their fault point."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: what to inject at ``point``, and when.

    Attributes
    ----------
    point:
        The fault-point name this spec arms (see the module table).
    error:
        Message of the :class:`FaultError` to raise (None = don't raise).
    latency_s:
        Seconds to sleep at the point before anything else happens.
    corrupt:
        Marks this spec for the *corrupt-write* channel: it is consumed by
        :func:`should_corrupt` (sites that can deliberately tear a write)
        instead of :func:`fire`.
    crash:
        ``os._exit(3)`` at the point -- only meaningful at points executed
        inside worker processes (``shard.fit.worker``); crashing the
        serving process itself is never injected.
    times:
        Fire at most this many times (None = every matching hit).
    after:
        Skip the first ``after`` hits of the point before arming.
    """

    point: str
    error: Optional[str] = None
    latency_s: float = 0.0
    corrupt: bool = False
    crash: bool = False
    times: Optional[int] = 1
    after: int = 0

    def __post_init__(self) -> None:
        if not self.point:
            raise ValueError("FaultSpec needs a non-empty point name")
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.error is None and self.latency_s == 0 and not self.corrupt and not self.crash:
            raise ValueError(
                f"FaultSpec for {self.point!r} injects nothing: set error=, "
                "latency_s=, corrupt=True or crash=True"
            )


@dataclass(frozen=True)
class FaultAction:
    """A claimed, ready-to-execute fault -- picklable, so it can travel to
    a worker process and execute there (see :func:`claim`)."""

    point: str
    error: Optional[str] = None
    latency_s: float = 0.0
    crash: bool = False

    def execute(self) -> None:
        """Inject: sleep, then crash or raise, as the spec directed."""
        if self.latency_s > 0:
            time.sleep(self.latency_s)
        if self.crash:
            # A hard worker death: no exception propagation, no cleanup --
            # exactly what a OOM-killed or segfaulted fit worker looks like
            # to the parent pool (BrokenProcessPool).
            os._exit(3)
        if self.error is not None:
            raise FaultError(f"injected fault at {self.point}: {self.error}")


class FaultPlan:
    """An activatable set of :class:`FaultSpec` with central hit counting.

    Hit counting is per point and shared by every spec: each
    :func:`fire`/:func:`claim`/:func:`should_corrupt` visit of a point
    increments its counter once, and the first spec whose
    ``after``/``times`` window covers that hit (and whose channel --
    corrupt or not -- matches) fires.  All bookkeeping is lock-protected,
    so concurrent serving threads see a consistent countdown.

    A plan is a context manager: ``with plan:`` activates it for the block
    and restores whatever plan (usually none) was active before.
    """

    def __init__(self, specs: Sequence[FaultSpec]) -> None:
        self._specs: Tuple[FaultSpec, ...] = tuple(specs)
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {}
        self._spec_fired: List[int] = [0] * len(self._specs)
        #: Chronological log of (point, kind) for every injected fault.
        self.fired: List[Tuple[str, str]] = []

    @property
    def specs(self) -> Tuple[FaultSpec, ...]:
        return self._specs

    def hits(self, point: str) -> int:
        """How many times ``point`` has been visited under this plan."""
        with self._lock:
            return self._hits.get(point, 0)

    def fire_count(self, point: Optional[str] = None) -> int:
        """Injected faults so far (optionally only at ``point``)."""
        with self._lock:
            if point is None:
                return len(self.fired)
            return sum(1 for fired_point, _ in self.fired if fired_point == point)

    def claim(self, point: str, corrupt: bool = False) -> Optional[FaultAction]:
        """Consume the pending fault at ``point``, if any.

        Increments the point's hit counter and, when a spec's window covers
        this hit, marks the spec fired and returns its action -- which the
        caller executes wherever appropriate (in place via
        :meth:`FaultAction.execute`, or shipped to a worker process).
        Returns None when nothing is armed for this hit.
        """
        with self._lock:
            hit = self._hits.get(point, 0)
            self._hits[point] = hit + 1
            for index, spec in enumerate(self._specs):
                if spec.point != point or spec.corrupt != corrupt:
                    continue
                if hit < spec.after:
                    continue
                if spec.times is not None and self._spec_fired[index] >= spec.times:
                    continue
                self._spec_fired[index] += 1
                kind = (
                    "crash"
                    if spec.crash
                    else "corrupt"
                    if spec.corrupt
                    else "error"
                    if spec.error is not None
                    else "latency"
                )
                self.fired.append((point, kind))
                return FaultAction(
                    point=point,
                    error=spec.error,
                    latency_s=spec.latency_s,
                    crash=spec.crash,
                )
        return None

    def describe(self) -> Dict[str, object]:
        """JSON-ready summary: the specs and what has fired (for artifacts)."""
        with self._lock:
            return {
                "specs": [
                    {
                        "point": spec.point,
                        "error": spec.error,
                        "latency_s": spec.latency_s,
                        "corrupt": spec.corrupt,
                        "crash": spec.crash,
                        "times": spec.times,
                        "after": spec.after,
                    }
                    for spec in self._specs
                ],
                "hits": dict(self._hits),
                "fired": list(self.fired),
            }

    # ------------------------------------------------------- context manager

    def __enter__(self) -> "FaultPlan":
        self._previous = active_plan()
        activate(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        activate(self._previous)

    def __repr__(self) -> str:
        return f"FaultPlan(specs={len(self._specs)}, fired={self.fire_count()})"


# ---------------------------------------------------------------- activation

#: The single active plan.  Read without locking on the hot path: fault
#: points fire only for the plan a test/benchmark deliberately installed,
#: and installation is the rare, already-synchronized operation.
_ACTIVE: Optional[FaultPlan] = None


def activate(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` as the process-wide active plan (None deactivates)."""
    global _ACTIVE
    _ACTIVE = plan


def deactivate() -> None:
    """Clear the active plan: every fault point is a no-op again."""
    activate(None)


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """``with faults.injected(plan):`` -- activate for the block, then restore."""
    previous = active_plan()
    activate(plan)
    try:
        yield plan
    finally:
        activate(previous)


# --------------------------------------------------------------- fault points


def fire(point: str) -> None:
    """The fault point: no-op without a plan, else inject what is armed.

    This is the line compiled into the hot paths, so the inactive case is
    one global load and a ``None`` test -- nothing else.
    """
    plan = _ACTIVE
    if plan is None:
        return
    action = plan.claim(point)
    if action is not None:
        action.execute()


def claim(point: str) -> Optional[FaultAction]:
    """Consume the pending fault at ``point`` without executing it.

    For sites that run the actual work elsewhere (a worker process, a
    submitted thread task): the claim happens centrally and deterministically
    in the caller, the returned action travels with the work and executes
    at the destination.  No-op (None) without an active plan.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.claim(point)


def should_corrupt(point: str) -> bool:
    """Whether a ``corrupt=True`` spec is armed for this visit of ``point``.

    Sites that know how to tear their own write (e.g. the snapshot writer
    truncating the staged score matrix) consult this; everything else uses
    :func:`fire`.  No-op (False) without an active plan.
    """
    plan = _ACTIVE
    if plan is None:
        return False
    return plan.claim(point, corrupt=True) is not None


# ------------------------------------------------------------ fault schedule


@dataclass(frozen=True)
class FaultEvent:
    """Install ``plan`` (None = clear) ``at_s`` seconds into a run."""

    at_s: float
    plan: Optional[FaultPlan]

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError(f"at_s must be >= 0, got {self.at_s}")


@dataclass(frozen=True)
class FaultSchedule:
    """A scripted timeline of plan (de)activations for a load run.

    ``repro.serving.loadgen.run_load(fault_schedule=...)`` replays the
    events while the load is in flight, so the chaos gate can open and
    close fault windows mid-traffic deterministically (same offsets every
    run; the load itself is seeded).  Events fire in ``at_s`` order
    regardless of construction order.
    """

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda event: event.at_s))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)
