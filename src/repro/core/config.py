"""Configuration shared by the SimRank family of algorithms."""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass

from repro.graph.click_graph import WeightSource

__all__ = ["EvidenceKind", "SimrankConfig"]


class EvidenceKind(str, enum.Enum):
    """Which evidence function (paper Section 7) to use.

    ``GEOMETRIC`` is Equation 7.3 (``sum_{i=1..n} 2^-i``), the one used in the
    paper's experiments; ``EXPONENTIAL`` is Equation 7.4 (``1 - e^-n``).
    """

    GEOMETRIC = "geometric"
    EXPONENTIAL = "exponential"


@dataclass(frozen=True)
class SimrankConfig:
    """Parameters of the SimRank iterations.

    Attributes
    ----------
    c1:
        Decay factor for the query-query equations (paper Eq. 4.1).
    c2:
        Decay factor for the ad-ad equations (paper Eq. 4.2).
    iterations:
        Number of fixpoint iterations.  The paper tabulates the first 7
        iterations and notes that, in practice, computations are limited to a
        small number of iterations.
    tolerance:
        Optional early-stopping threshold on the largest per-pair change
        between consecutive iterations (0 disables early stopping).
    weight_source:
        Which edge statistic weighted SimRank and Pearson use as ``w(q, a)``;
        the paper always uses the expected click rate.
    evidence:
        Which evidence function evidence-based and weighted SimRank apply.
    zero_evidence_floor:
        Evidence factor used for pairs with *no* common neighbour.  The
        paper's Equation 7.3 gives such pairs evidence 0, which zeroes their
        evidence-based and weighted scores entirely; the default of 0 is that
        faithful behaviour.  The paper's own evaluation, however, reports the
        evidence-carrying variants covering slightly *more* queries than
        plain SimRank and producing non-trivial desirability predictions
        after all direct evidence has been removed -- both impossible under a
        hard zero -- so the deployed system evidently kept some structural
        signal for zero-evidence pairs.  Setting a small positive floor
        (e.g. 0.1) retains that fraction of the structural score; the
        evaluation harness does so and EXPERIMENTS.md documents it.
    prune_threshold:
        Per-iteration truncation epsilon of the ``sparse`` backend
        (:class:`~repro.core.simrank_sparse.SparseSimrank`): score entries
        below it are dropped after every iteration.  0 (the default)
        disables truncation and keeps the sparse computation exact; other
        backends ignore the knob.
    prune_top_k:
        Per-row retention cap of the ``sparse`` backend: after truncation
        only the ``prune_top_k`` largest entries of each score row are kept
        (0, the default, keeps all).  Serving-exact as long as it comfortably
        exceeds the rewrite depth; other backends ignore the knob.
    """

    c1: float = 0.8
    c2: float = 0.8
    iterations: int = 7
    tolerance: float = 0.0
    weight_source: WeightSource = WeightSource.EXPECTED_CLICK_RATE
    evidence: EvidenceKind = EvidenceKind.GEOMETRIC
    zero_evidence_floor: float = 0.0
    prune_threshold: float = 0.0
    prune_top_k: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.c1 <= 1:
            raise ValueError(f"c1 must be in (0, 1], got {self.c1}")
        if not 0 < self.c2 <= 1:
            raise ValueError(f"c2 must be in (0, 1], got {self.c2}")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if self.tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {self.tolerance}")
        if not 0 <= self.zero_evidence_floor < 1:
            raise ValueError(
                f"zero_evidence_floor must be in [0, 1), got {self.zero_evidence_floor}"
            )
        if not 0 <= self.prune_threshold < 1:
            raise ValueError(
                f"prune_threshold must be in [0, 1), got {self.prune_threshold}"
            )
        if self.prune_top_k < 0:
            raise ValueError(f"prune_top_k must be >= 0, got {self.prune_top_k}")

    def with_decay(self, c1: float, c2: float = None) -> "SimrankConfig":
        """Copy of the configuration with different decay factors."""
        return dataclasses.replace(self, c1=c1, c2=self.c2 if c2 is None else c2)

    def with_iterations(self, iterations: int) -> "SimrankConfig":
        """Copy of the configuration with a different iteration count."""
        return dataclasses.replace(self, iterations=iterations)
