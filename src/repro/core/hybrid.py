"""Combining click-graph similarity with text-based similarity.

The paper's conclusions (Section 11) note that "methods for combining our
similarity scores with semantic text-based similarities could be considered".
This module provides that extension:

* :class:`TextSimilarity` -- a purely lexical query similarity (Jaccard
  overlap of stemmed tokens), useful on its own as another baseline and as
  the text component of the hybrid.
* :class:`HybridSimilarity` -- a linear combination of any click-graph
  method with the text similarity, ``alpha * graph + (1 - alpha) * text``.
  Pairs that only one component knows about are still scored, which lets the
  hybrid cover queries that have click evidence but no lexical overlap and
  vice versa.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.scores import SimilarityScores
from repro.core.similarity_base import QuerySimilarityMethod
from repro.graph.click_graph import ClickGraph
from repro.text.normalize import tokenize
from repro.text.porter import stem

__all__ = ["TextSimilarity", "HybridSimilarity", "text_similarity"]

Node = Hashable


def text_similarity(first: Node, second: Node) -> float:
    """Jaccard overlap of the stemmed tokens of two query strings."""
    first_stems = {stem(token) for token in tokenize(str(first))}
    second_stems = {stem(token) for token in tokenize(str(second))}
    union = first_stems | second_stems
    if not union:
        return 0.0
    return len(first_stems & second_stems) / len(union)


class TextSimilarity(QuerySimilarityMethod):
    """Lexical query-query similarity over the queries present in a click graph.

    Only pairs with at least one shared stemmed token receive a score, so the
    all-pairs computation stays near-linear via a stem -> queries index.
    """

    name = "text"

    def _compute_query_scores(self, graph: ClickGraph) -> SimilarityScores:
        scores = SimilarityScores()
        by_stem = {}
        for query in graph.queries():
            # dict.fromkeys dedups while keeping token order -- iterating a
            # set here would visit stems in hash order and make the
            # insertion order of by_stem (and anything downstream that
            # enumerates it) vary with PYTHONHASHSEED.
            for token in dict.fromkeys(tokenize(str(query))):
                by_stem.setdefault(stem(token), set()).add(query)
        seen = set()
        for queries in by_stem.values():
            ordered = sorted(queries, key=repr)
            for i, first in enumerate(ordered):
                for second in ordered[i + 1:]:
                    key = (first, second)
                    if key in seen:
                        continue
                    seen.add(key)
                    value = text_similarity(first, second)
                    if value > 0.0:
                        scores.set(first, second, value)
        return scores


class HybridSimilarity(QuerySimilarityMethod):
    """Linear combination of a click-graph method and text similarity.

    ``alpha`` is the weight of the click-graph component; ``alpha=1`` reduces
    to the graph method, ``alpha=0`` to pure text similarity.
    """

    name = "hybrid"

    def __init__(self, graph_method: QuerySimilarityMethod, alpha: float = 0.7) -> None:
        super().__init__()
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.graph_method = graph_method
        self.alpha = alpha
        self.name = f"hybrid({graph_method.name}, alpha={alpha:g})"
        self._text = TextSimilarity()

    def _compute_query_scores(self, graph: ClickGraph) -> SimilarityScores:
        # Always refit the inner method.  It used to be skipped when
        # `graph_method.graph is graph`, but graphs are mutated *in place*
        # by RewriteEngine.refresh (and may be by callers), and an identity
        # check cannot see that -- the method holds the very object that
        # changed -- so the shortcut served stale pre-mutation scores.  The
        # call stays positional: the inner method may be any
        # QuerySimilarityMethod, including ones with the pre-warm-start
        # fit(graph) signature, and the hybrid's blended seed would be a
        # poor inner seed anyway.
        self.graph_method.fit(graph)
        self._text.fit(graph)
        graph_scores = self.graph_method.similarities()
        text_scores = self._text.similarities()

        combined = SimilarityScores()
        # Order-preserving union: graph pairs first, then text-only pairs.
        # A set union here would enumerate pairs in hash order, making the
        # insertion order of `combined` depend on PYTHONHASHSEED.
        pairs = dict.fromkeys((a, b) for a, b, _ in graph_scores.pairs())
        pairs.update(dict.fromkeys((a, b) for a, b, _ in text_scores.pairs()))
        for first, second in pairs:
            value = self.alpha * graph_scores.score(first, second) + (1 - self.alpha) * (
                text_scores.score(first, second)
            )
            if value > 0.0:
                combined.set(first, second, value)
        return combined

    def component_scores(self, first: Node, second: Node) -> tuple:
        """The (graph, text) components behind a hybrid score, for inspection."""
        self._require_fitted()
        return (
            self.graph_method.query_similarity(first, second),
            self._text.query_similarity(first, second),
        )
