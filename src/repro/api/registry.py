"""Decorator-based registry of query-similarity methods.

The evaluation harness, the CLI and the :class:`~repro.api.engine.RewriteEngine`
refer to similarity methods by name; this module maps those names to factories.
Unlike the old ``if``-chain factory (``repro.core.registry.create_method``,
now a deprecation shim over this module), the registry is open: downstream
code -- and tests -- can plug in custom methods without editing core::

    @register_method("my_method", backends=("matrix",))
    def build_my_method(config: SimrankConfig, backend: str) -> QuerySimilarityMethod:
        return MyMethod(config=config)

A registered factory receives the :class:`~repro.core.config.SimrankConfig`
and the chosen backend name.  Decorating a
:class:`~repro.core.similarity_base.QuerySimilarityMethod` subclass directly
is also supported; the class is instantiated with ``config=`` when its
constructor accepts it.

Five backends exist for the SimRank family: ``reference`` (node-pair
implementations faithful to the paper's equations, good for small graphs and
traces), ``matrix`` (same fixpoint, dense linear algebra, used for
experiments), ``sharded`` (same fixpoint computed per connected component on
block-diagonal structures -- the fast choice for the disconnected click
graphs of practice; see :mod:`repro.core.simrank_sharded`), ``sparse``
(the fixpoint on ``scipy.sparse`` CSR matrices with optional epsilon/top-k
pruning, whose cost tracks the nonzeros instead of ``n^2``; see
:mod:`repro.core.simrank_sparse`) and ``auto`` (a planner that inspects the
graph's component histogram, density and node count at fit time and runs
whichever of the others the shape favours, recording its decision in an
inspectable :class:`~repro.core.planner.PlanReport`; see
:mod:`repro.core.planner`).  Methods that do not distinguish backends
register the same factory under every name so callers never have to
special-case them.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.baselines import CommonAdSimilarity, CosineSimilarity, JaccardSimilarity
from repro.core.config import SimrankConfig
from repro.core.evidence_simrank import EvidenceSimrank
from repro.core.pearson import PearsonSimilarity
from repro.core.planner import AutoSimrank
from repro.core.simrank import BipartiteSimrank
from repro.core.simrank_matrix import MatrixSimrank
from repro.core.simrank_sharded import ShardedSimrank
from repro.core.simrank_sparse import SparseSimrank
from repro.core.similarity_base import QuerySimilarityMethod
from repro.core.weighted_simrank import WeightedSimrank

__all__ = [
    "PAPER_METHODS",
    "SIMRANK_BACKENDS",
    "RegistryError",
    "UnknownMethodError",
    "UnknownBackendError",
    "DuplicateMethodError",
    "MethodSpec",
    "register_method",
    "unregister_method",
    "available_methods",
    "available_backends",
    "method_spec",
    "create",
]

#: A factory builds a configured method instance for one (config, backend) pair.
MethodFactory = Callable[[SimrankConfig, str], QuerySimilarityMethod]

#: The four methods compared throughout the paper's evaluation, in the order
#: the figures list them.
PAPER_METHODS = ["pearson", "simrank", "evidence_simrank", "weighted_simrank"]


class RegistryError(ValueError):
    """Base class of all registry errors (a :class:`ValueError` subclass)."""


class UnknownMethodError(RegistryError):
    """Raised when a method name has not been registered."""


class UnknownBackendError(RegistryError):
    """Raised when a method does not provide the requested backend."""


class DuplicateMethodError(RegistryError):
    """Raised when a name is registered twice without ``replace=True``."""


@dataclass(frozen=True)
class MethodSpec:
    """One registered similarity method."""

    name: str
    factory: MethodFactory
    backends: Tuple[str, ...]
    default_backend: str
    description: str = ""


_REGISTRY: Dict[str, MethodSpec] = {}


#: Backends of the SimRank family (and, for uniformity, the default set every
#: backend-agnostic method registers under, so one ``--backend`` flag can be
#: applied to a whole method lineup without special cases).  ``matrix`` stays
#: first: it is the default backend of every method registered with this set.
SIMRANK_BACKENDS: Tuple[str, ...] = ("matrix", "reference", "sharded", "sparse", "auto")


def register_method(
    name: str,
    backends: Tuple[str, ...] = SIMRANK_BACKENDS,
    *,
    default_backend: Optional[str] = None,
    description: str = "",
    replace: bool = False,
) -> Callable:
    """Decorator registering a method factory (or method class) under ``name``.

    Parameters
    ----------
    name:
        The name :func:`create` and :class:`~repro.api.engine.RewriteEngine`
        resolve.
    backends:
        Backend names the factory understands; the factory is called with the
        chosen one as its second argument.
    default_backend:
        Backend used when the caller passes none; defaults to the first entry
        of ``backends``.
    description:
        One-line human-readable summary, surfaced by ``--list-methods``.
    replace:
        Allow overwriting an existing registration (otherwise
        :class:`DuplicateMethodError`).
    """
    if not name or not isinstance(name, str):
        raise RegistryError(f"method name must be a non-empty string, got {name!r}")
    if not backends:
        raise RegistryError(f"method {name!r} must declare at least one backend")
    chosen_default = default_backend or backends[0]
    if chosen_default not in backends:
        raise UnknownBackendError(
            f"default backend {chosen_default!r} of method {name!r} is not in {backends}"
        )

    def decorator(target):
        spec = MethodSpec(
            name=name,
            factory=_coerce_factory(name, target),
            backends=tuple(backends),
            default_backend=chosen_default,
            description=description or (inspect.getdoc(target) or "").split("\n")[0],
        )
        if name in _REGISTRY and not replace:
            raise DuplicateMethodError(
                f"method {name!r} is already registered; pass replace=True to overwrite"
            )
        _REGISTRY[name] = spec
        return target

    return decorator


def _coerce_factory(name: str, target) -> MethodFactory:
    """Turn the decorated object into a uniform ``(config, backend)`` factory."""
    if isinstance(target, type) and issubclass(target, QuerySimilarityMethod):
        parameters = inspect.signature(target).parameters
        takes_config = "config" in parameters or any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters.values()
        )

        def class_factory(config: SimrankConfig, backend: str) -> QuerySimilarityMethod:
            return target(config=config) if takes_config else target()

        return class_factory
    if callable(target):
        return target
    raise RegistryError(
        f"method {name!r} must be registered with a factory callable or a "
        f"QuerySimilarityMethod subclass, got {target!r}"
    )


def unregister_method(name: str) -> None:
    """Remove a registration (primarily for tests and plugin teardown)."""
    if name not in _REGISTRY:
        raise UnknownMethodError(f"cannot unregister unknown method {name!r}")
    del _REGISTRY[name]


def available_methods() -> List[str]:
    """Registered method names, in registration order."""
    return list(_REGISTRY)


def available_backends(name: str) -> Tuple[str, ...]:
    """Backend names a method accepts."""
    return method_spec(name).backends


def method_spec(name: str) -> MethodSpec:
    """The full registration record of a method."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise UnknownMethodError(
            f"unknown similarity method {name!r}; choose from {available_methods()}"
        )
    return spec


def create(
    name: str,
    config: Optional[SimrankConfig] = None,
    backend: Optional[str] = None,
    n_jobs: Optional[int] = None,
    executor: Optional[str] = None,
) -> QuerySimilarityMethod:
    """Instantiate a registered similarity method by name.

    Parameters
    ----------
    name:
        One of :func:`available_methods`.
    config:
        SimRank configuration shared by the SimRank variants (decay factors,
        iterations, weight source, evidence kind); defaults apply when omitted.
    backend:
        One of :func:`available_backends` for the method; the method's default
        backend when omitted.
    n_jobs:
        Worker count for parallel shard fits (positive, or ``-1`` for all
        available CPUs).  Forwarded only to factories whose signature
        declares it, so pre-existing ``(config, backend)`` factories keep
        working unchanged; other methods ignore it.
    executor:
        Pool flavour (``"thread"``/``"process"``/``"auto"``) for parallel
        shard fits; forwarded like ``n_jobs``.
    """
    spec = method_spec(name)
    chosen = backend or spec.default_backend
    if chosen not in spec.backends:
        raise UnknownBackendError(
            f"method {name!r} has no backend {chosen!r}; choose from {spec.backends}"
        )
    extras = {}
    if n_jobs is not None or executor is not None:
        parameters = inspect.signature(spec.factory).parameters
        accepts_kwargs = any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters.values()
        )
        if n_jobs is not None and ("n_jobs" in parameters or accepts_kwargs):
            extras["n_jobs"] = n_jobs
        if executor is not None and ("executor" in parameters or accepts_kwargs):
            extras["executor"] = executor
    return spec.factory(config or SimrankConfig(), chosen, **extras)


# --------------------------------------------------------------------------
# Built-in methods, registered in the order the paper's figures list them.
# --------------------------------------------------------------------------


@register_method("pearson", description="Pearson correlation baseline (Section 9.1)")
def _build_pearson(config: SimrankConfig, backend: str) -> QuerySimilarityMethod:
    return PearsonSimilarity(source=config.weight_source)


def _build_simrank_family(
    mode: str, reference_cls, config: SimrankConfig, backend: str,
    n_jobs: int, executor: str,
) -> QuerySimilarityMethod:
    """One dispatch for the three SimRank modes (they share every backend)."""
    if backend == "reference":
        return reference_cls(config=config)
    if backend == "sharded":
        return ShardedSimrank(config=config, mode=mode, n_jobs=n_jobs, executor=executor)
    if backend == "sparse":
        return SparseSimrank(config=config, mode=mode)
    if backend == "auto":
        return AutoSimrank(config=config, mode=mode, n_jobs=n_jobs, executor=executor)
    return MatrixSimrank(config=config, mode=mode)


@register_method("simrank", description="Plain bipartite SimRank (Section 4)")
def _build_simrank(
    config: SimrankConfig, backend: str, n_jobs: int = 1, executor: str = "auto"
) -> QuerySimilarityMethod:
    return _build_simrank_family(
        "simrank", BipartiteSimrank, config, backend, n_jobs, executor
    )


@register_method("evidence_simrank", description="Evidence-based SimRank (Section 7)")
def _build_evidence_simrank(
    config: SimrankConfig, backend: str, n_jobs: int = 1, executor: str = "auto"
) -> QuerySimilarityMethod:
    return _build_simrank_family(
        "evidence", EvidenceSimrank, config, backend, n_jobs, executor
    )


@register_method("weighted_simrank", description="Weighted SimRank / Simrank++ (Section 8)")
def _build_weighted_simrank(
    config: SimrankConfig, backend: str, n_jobs: int = 1, executor: str = "auto"
) -> QuerySimilarityMethod:
    return _build_simrank_family(
        "weighted", WeightedSimrank, config, backend, n_jobs, executor
    )


@register_method("common_ads", description="Naive common-ad counting (Table 1)")
def _build_common_ads(config: SimrankConfig, backend: str) -> QuerySimilarityMethod:
    return CommonAdSimilarity()


@register_method("jaccard", description="Jaccard overlap of clicked-ad sets")
def _build_jaccard(config: SimrankConfig, backend: str) -> QuerySimilarityMethod:
    return JaccardSimilarity()


@register_method("cosine", description="Cosine similarity of weighted ad vectors")
def _build_cosine(config: SimrankConfig, backend: str) -> QuerySimilarityMethod:
    return CosineSimilarity(source=config.weight_source)
