"""One validated, serializable configuration for the whole serving stack.

:class:`EngineConfig` unifies the two halves that used to be configured
separately -- the :class:`~repro.core.config.SimrankConfig` of the similarity
method and the knobs of the rewrite front-end
(:class:`~repro.core.rewriter.QueryRewriter`) -- so a serving deployment is
described by a single object that round-trips through ``to_dict`` /
``from_dict`` (and therefore through JSON config files).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.config import EvidenceKind, SimrankConfig
from repro.graph.click_graph import WeightSource

__all__ = ["ConfigError", "EngineConfig"]


class ConfigError(ValueError):
    """An invalid :class:`EngineConfig`, rejected at construction time.

    Raised when the config is *built* -- directly, via ``replace``, or while
    deserializing a snapshot manifest through :meth:`EngineConfig.from_dict`
    -- so a typo'd backend or a nonsensical ``n_jobs`` fails right where the
    mistake is, not deep inside a later ``fit()``.  Subclasses
    :class:`ValueError`, so pre-existing ``except ValueError`` handling
    keeps working.
    """


_EXECUTORS = ("thread", "process", "auto")


#: ``similarity`` sub-dictionary fields and how to decode them from plain values.
_SIMILARITY_DECODERS = {
    "c1": float,
    "c2": float,
    "iterations": int,
    "tolerance": float,
    "weight_source": WeightSource,
    "evidence": EvidenceKind,
    "zero_evidence_floor": float,
    "prune_threshold": float,
    "prune_top_k": int,
}


@dataclass(frozen=True)
class EngineConfig:
    """Everything a :class:`~repro.api.engine.RewriteEngine` needs to serve.

    Attributes
    ----------
    method:
        Registered similarity method name (see
        :func:`repro.api.registry.available_methods`).
    backend:
        Backend variant of the method; ``None`` selects the method's default.
    similarity:
        Parameters of the similarity computation (decay factors, iterations,
        weight source, evidence kind).
    max_rewrites:
        Maximum rewrites kept per query (the paper uses 5).
    candidate_pool:
        Raw candidates considered before filtering (the paper records 100).
    min_score:
        Candidates scoring at or below this value are never proposed.
    deduplicate:
        Apply stemming-based duplicate removal to the rewrite list.
    bid_filtering:
        Drop rewrites outside the bid-term set when the engine is given one;
        disabling serves unfiltered rewrites even when bid terms are known.
    cache_size:
        Maximum number of rewrite lists the serving cache retains, with
        least-recently-used eviction beyond it.  ``None`` (the default)
        keeps every entry -- the paper's full-precompute deployment mode.
        Eviction never changes served results, only the recompute cost of
        re-seeing an evicted query; see ``CacheInfo.evictions``.
    n_jobs:
        Worker count for parallel shard fits (sharded/auto backends): a
        positive integer, or ``-1`` for one worker per *available* CPU
        (affinity-aware; see :func:`repro.core.parallel.available_cpu_count`).
    executor:
        Pool flavour for parallel shard fits: ``"thread"``, ``"process"``
        (true multi-core), or ``"auto"`` (the default) to pick processes
        only when the estimated work amortises the fork/pickle overhead.
    """

    method: str = "weighted_simrank"
    backend: Optional[str] = None
    similarity: SimrankConfig = field(default_factory=SimrankConfig)
    max_rewrites: int = 5
    candidate_pool: int = 100
    min_score: float = 0.0
    deduplicate: bool = True
    bid_filtering: bool = True
    cache_size: Optional[int] = None
    n_jobs: int = 1
    executor: str = "auto"

    def __post_init__(self) -> None:
        if not self.method or not isinstance(self.method, str):
            raise ConfigError(f"method must be a non-empty string, got {self.method!r}")
        self._validate_backend()
        if self.max_rewrites < 1:
            raise ConfigError(f"max_rewrites must be at least 1, got {self.max_rewrites}")
        if self.candidate_pool < self.max_rewrites:
            raise ConfigError(
                f"candidate_pool ({self.candidate_pool}) must be at least "
                f"max_rewrites ({self.max_rewrites})"
            )
        if self.min_score < 0:
            raise ConfigError(f"min_score must be >= 0, got {self.min_score}")
        if self.cache_size is not None and self.cache_size < 1:
            raise ConfigError(
                "cache_size must be a positive integer or None (unbounded), "
                f"got {self.cache_size}"
            )
        if self.n_jobs == 0 or self.n_jobs < -1:
            raise ConfigError(
                f"n_jobs must be a positive integer or -1 (all CPUs), got {self.n_jobs}"
            )
        if self.executor not in _EXECUTORS:
            raise ConfigError(
                f"executor must be one of {_EXECUTORS}, got {self.executor!r}"
            )

    def _validate_backend(self) -> None:
        """Reject a backend the configured method does not provide.

        Checked against the live registry so the typo fails at construction
        (including :meth:`from_dict` on a snapshot manifest) rather than
        when the engine is eventually built.  Methods not registered *yet*
        (plugin methods configured before registration) are left for
        :func:`repro.api.registry.create` to resolve later.
        """
        if self.backend is None:
            return
        from repro.api import registry

        try:
            spec = registry.method_spec(self.method)
        except registry.UnknownMethodError:
            return
        if self.backend not in spec.backends:
            raise ConfigError(
                f"method {self.method!r} has no backend {self.backend!r}; "
                f"choose from {spec.backends}"
            )

    # ------------------------------------------------------------- derivation

    def replace(self, **changes: Any) -> "EngineConfig":
        """Copy of the configuration with some fields changed."""
        return dataclasses.replace(self, **changes)

    # ---------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        """Plain-value dictionary representation (JSON-serializable)."""
        return {
            "method": self.method,
            "backend": self.backend,
            "similarity": {
                "c1": self.similarity.c1,
                "c2": self.similarity.c2,
                "iterations": self.similarity.iterations,
                "tolerance": self.similarity.tolerance,
                "weight_source": self.similarity.weight_source.value,
                "evidence": self.similarity.evidence.value,
                "zero_evidence_floor": self.similarity.zero_evidence_floor,
                "prune_threshold": self.similarity.prune_threshold,
                "prune_top_k": self.similarity.prune_top_k,
            },
            "max_rewrites": self.max_rewrites,
            "candidate_pool": self.candidate_pool,
            "min_score": self.min_score,
            "deduplicate": self.deduplicate,
            "bid_filtering": self.bid_filtering,
            "cache_size": self.cache_size,
            "n_jobs": self.n_jobs,
            "executor": self.executor,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EngineConfig":
        """Rebuild a validated configuration from :meth:`to_dict` output.

        Unknown keys raise :class:`ValueError` so typos in config files fail
        loudly instead of silently falling back to defaults.
        """
        data = dict(payload)
        similarity_payload = data.pop("similarity", {})
        unknown = set(data) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ConfigError(f"unknown EngineConfig keys: {sorted(unknown)}")
        unknown_similarity = set(similarity_payload) - set(_SIMILARITY_DECODERS)
        if unknown_similarity:
            raise ConfigError(
                f"unknown EngineConfig similarity keys: {sorted(unknown_similarity)}"
            )
        similarity_kwargs = {
            key: _SIMILARITY_DECODERS[key](value)
            for key, value in similarity_payload.items()
        }
        return cls(similarity=SimrankConfig(**similarity_kwargs), **data)
