"""Offline -> online persistence: snapshots of fitted rewrite engines.

The paper's deployment story (Section 9.3) computes rewrites offline and
serves them online, but a fitted engine used to live only in process memory:
every restart paid the full SimRank fixpoint again.  A *snapshot* persists
everything serving needs -- the similarity score store, the
:class:`~repro.api.config.EngineConfig`, the bid terms and fit metadata --
so :func:`read_snapshot` (or :meth:`RewriteEngine.load`) revives an engine
that serves identical rewrite lists without refitting.

Snapshot layout (one directory)::

    <path>/
        manifest.json      format version, engine config, bid terms,
                           query index, fit metadata (iterations_run, ...)
        query_scores.npz   the symmetric CSR similarity matrix
                           (scipy.sparse.save_npz)

All backends snapshot through the same format: ``matrix``, ``sharded`` and
``sparse`` already serve from an array-backed store
(:class:`~repro.core.scores_array.ArraySimilarityScores`); the dict-backed
``reference`` store is converted through
:meth:`~repro.core.scores.SimilarityScores.to_array` on save and restored
with :meth:`~repro.core.scores.SimilarityScores.from_array` on load, so the
revived method serves the exact store flavour it was fitted with.

Node identifiers must round-trip exactly through JSON (``str``, ``int``,
``float`` or ``bool``); anything else -- a tuple node, say -- raises
:class:`SnapshotError` at save time rather than coming back subtly changed.

:class:`EngineSnapshotStore` is the named-snapshot sibling of
:class:`~repro.graph.storage.ClickGraphStore`: a root directory holding one
snapshot per name, with the same save/load/list/delete surface.
"""

from __future__ import annotations

import itertools
import json
import shutil
from pathlib import Path
from typing import List, Union

from scipy import sparse

from repro.api.config import EngineConfig
from repro.api.staging import staged_write
from repro.core import faults
from repro.core.scores import SimilarityScores
from repro.core.scores_array import ArraySimilarityScores

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "graph_fingerprint",
    "write_snapshot",
    "read_snapshot",
    "read_manifest",
    "warm_start_from_snapshot",
    "EngineSnapshotStore",
]

PathLike = Union[str, Path]

#: Bumped whenever the on-disk layout changes incompatibly; readers reject
#: snapshots written under a different version instead of misreading them.
SNAPSHOT_FORMAT_VERSION = 1

MANIFEST_FILENAME = "manifest.json"
SCORES_FILENAME = "query_scores.npz"

#: Node-id types that round-trip *exactly* through JSON.  Shared with the
#: SQLite serving store (repro.store.sqlite), which has the same "node ids
#: must survive serialization exactly" contract.
_JSON_EXACT_NODE_TYPES = (str, int, float, bool)


class SnapshotError(RuntimeError):
    """A snapshot could not be written or read."""


def graph_fingerprint(graph) -> dict:
    """Coarse shape of a click graph, as recorded in snapshot manifests.

    One definition shared by the writer and every staleness check (e.g. the
    eval harness): comparing a manifest's ``fit.graph`` against
    ``graph_fingerprint(candidate_dataset)`` detects snapshots fitted on a
    different graph without loading the score matrix.
    """
    return {
        "queries": graph.num_queries,
        "ads": graph.num_ads,
        "edges": graph.num_edges,
        "clicks": graph.total_clicks(),
    }


def _iterations_run(engine):
    """Fit iterations, wherever the backend records them (None if unknown).

    The matrix/sparse engines expose ``iterations_run`` directly; the
    reference methods record it on their (fit-only) result objects; a
    loaded-but-not-refitted engine carries the value its snapshot recorded.
    """
    direct = getattr(engine.method, "iterations_run", None)
    if direct is not None:
        return direct
    for attribute in ("result", "simrank_result"):
        try:
            result = getattr(engine.method, attribute)
        except (AttributeError, RuntimeError):
            continue
        iterations = getattr(result, "iterations_run", None)
        if iterations is not None:
            return iterations
    return getattr(engine, "_snapshot_iterations_run", None)


def _plan_dict(engine):
    """The engine's ``backend="auto"`` plan as manifest JSON (None without one)."""
    plan = getattr(engine, "plan_report", None)
    return plan.to_dict() if plan is not None else None


# ------------------------------------------------------------------- writing


def write_snapshot(engine, path: PathLike) -> Path:
    """Persist a fitted engine under ``path`` (created if missing).

    Returns the snapshot directory.  Raises :class:`SnapshotError` for an
    unfitted engine or node identifiers that would not survive the JSON
    round trip.

    The write is staged in a sibling directory and swapped into place only
    once complete, so an overwrite interrupted mid-save can never pair an
    old manifest with a new score matrix (which could serve silently wrong
    scores); a crash at worst leaves the name briefly absent, which
    :func:`read_snapshot` rejects loudly.
    """
    faults.fire("snapshot.write")
    if not engine.is_fitted:
        raise SnapshotError(
            "cannot snapshot an unfitted engine; call .fit(graph) first"
        )
    scores = engine.method.similarities()
    if isinstance(scores, ArraySimilarityScores):
        array, store_kind = scores, "array"
    else:
        array, store_kind = scores.to_array(), "dict"
    index = array.index
    # The fitted graph's full query set (isolated queries included) lets a
    # loaded engine's precompute() warm exactly what the fitted one would; a
    # re-saved loaded engine forwards the universe it was restored with, and
    # without either the score-store index is the best-known universe.
    graph = engine.graph
    if graph is not None:
        universe = sorted(graph.queries(), key=repr)
        fingerprint = graph_fingerprint(graph)
    elif engine._snapshot_state_fresh():
        # Re-saving a loaded engine: forward its carried snapshot state.
        universe = engine._precompute_universe
        fingerprint = engine._snapshot_graph_fingerprint
    else:
        # The method was refit/restored out of band since the load, so any
        # carried universe/fingerprint describes a different fit.
        universe = None
        fingerprint = None
    # Both lists reach the JSON manifest, and after an out-of-band restore()
    # the store index need not be a subset of the graph's queries -- check
    # every node that will be serialized.
    for node in itertools.chain(index, universe or ()):
        if not isinstance(node, _JSON_EXACT_NODE_TYPES):
            raise SnapshotError(
                f"node id {node!r} ({type(node).__name__}) does not round-trip "
                "through JSON; snapshots support str, int, float and bool node "
                "ids -- convert other identifier types before saving"
            )

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    bid_terms = engine.bid_terms
    manifest = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "engine_config": engine.config.to_dict(),
        "bid_terms": sorted(bid_terms) if bid_terms is not None else None,
        "query_index": index,
        "query_universe": universe,
        "fit": {
            "method": engine.config.method,
            "store": store_kind,
            "iterations_run": _iterations_run(engine),
            "num_queries": len(index),
            "stored_pairs": len(array),
            # Coarse shape of the fitted graph: callers can compare it
            # against a candidate dataset to detect stale snapshots cheaply.
            "graph": fingerprint,
            # The backend="auto" planner's decision for this fit (None for
            # fixed backends), so "why did auto do that?" survives restarts.
            "plan": _plan_dict(engine),
        },
    }
    def _maybe_corrupt(staging: Path) -> None:
        if faults.should_corrupt("snapshot.write"):
            # Injected torn write: publish a snapshot whose score matrix was
            # cut off mid-write.  The manifest stays valid -- the worst
            # case, because only the (expensive) matrix load can notice.
            scores_file = staging / SCORES_FILENAME
            data = scores_file.read_bytes()
            scores_file.write_bytes(data[: max(1, len(data) // 2)])

    # Staged write, rename-only publish, crashed-writer debris sweep and
    # displaced-version restore: repro.api.staging.staged_write, shared with
    # the SQLite serving-store export.
    with staged_write(
        path, directory=True, error=SnapshotError, on_complete=_maybe_corrupt
    ) as staging:
        sparse.save_npz(staging / SCORES_FILENAME, array.matrix.tocsr())
        (staging / MANIFEST_FILENAME).write_text(json.dumps(manifest, indent=2) + "\n")
    return path


# ------------------------------------------------------------------- reading


def read_manifest(path: PathLike) -> dict:
    """The snapshot's manifest, validated for format version.

    Cheap (one small JSON file, no score matrix): use it to inspect a
    snapshot's config/bid terms/fit metadata before deciding to pay for a
    full :func:`read_snapshot`.  Raises :class:`SnapshotError` when the path
    holds no snapshot, a corrupt manifest, or a foreign format version.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_FILENAME
    if not manifest_path.is_file():
        raise SnapshotError(
            f"no engine snapshot at {path} (missing {MANIFEST_FILENAME})"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotError(
            f"corrupt snapshot manifest at {manifest_path}: {error}"
        ) from error
    if not isinstance(manifest, dict):
        raise SnapshotError(
            f"corrupt snapshot manifest at {manifest_path}: expected a JSON "
            f"object, got {type(manifest).__name__}"
        )
    version = manifest.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot at {path} has format version {version!r}; this build "
            f"reads version {SNAPSHOT_FORMAT_VERSION}"
        )
    return manifest


def read_snapshot(path: PathLike, engine_cls=None):
    """Revive a servable :class:`~repro.api.engine.RewriteEngine` from ``path``.

    The engine is built from the persisted config and bid terms, and its
    similarity method adopts the persisted score store via
    :meth:`~repro.core.similarity_base.QuerySimilarityMethod.restore` -- no
    fixpoint runs.  Raises :class:`SnapshotError` when the path holds no
    snapshot or one written under a different format version.
    ``engine_cls`` lets :class:`RewriteEngine` subclasses revive as
    themselves (``SubEngine.load`` passes it automatically).
    """
    from repro.api.engine import RewriteEngine

    faults.fire("snapshot.read")
    engine_cls = engine_cls or RewriteEngine
    path = Path(path)
    manifest = read_manifest(path)
    manifest_path = path / MANIFEST_FILENAME

    scores_path = path / SCORES_FILENAME
    if not scores_path.is_file():
        raise SnapshotError(f"snapshot at {path} is missing {SCORES_FILENAME}")
    try:
        config = EngineConfig.from_dict(manifest["engine_config"])
        index = manifest["query_index"]
    except KeyError as error:
        raise SnapshotError(
            f"snapshot manifest at {manifest_path} is missing key {error}"
        ) from error
    except (TypeError, ValueError) as error:
        raise SnapshotError(
            f"snapshot manifest at {manifest_path} holds an invalid engine "
            f"config: {error}"
        ) from error
    try:
        matrix = sparse.load_npz(scores_path).tocsr()
    except Exception as error:
        raise SnapshotError(
            f"corrupt snapshot score matrix at {scores_path}: {error}"
        ) from error
    try:
        array = ArraySimilarityScores(matrix, index)
    except (TypeError, ValueError) as error:
        raise SnapshotError(
            f"snapshot at {path} is internally inconsistent: {error}"
        ) from error
    fit_metadata = manifest.get("fit", {})
    scores = (
        SimilarityScores.from_array(array)
        if fit_metadata.get("store") == "dict"
        else array
    )

    bid_terms = manifest.get("bid_terms")
    if bid_terms is not None and not isinstance(bid_terms, list):
        raise SnapshotError(
            f"snapshot manifest at {manifest_path} holds invalid bid_terms: "
            f"expected a list or null, got {type(bid_terms).__name__}"
        )
    engine = engine_cls(
        config=config,
        bid_terms=bid_terms,
    )
    engine.method.restore(scores)
    engine._precompute_universe = manifest.get("query_universe")
    engine._snapshot_graph_fingerprint = fit_metadata.get("graph")
    engine._snapshot_state_generation = getattr(
        engine.method, "_fit_generation", None
    )
    iterations_run = fit_metadata.get("iterations_run")
    # Kept on the engine (cleared by a refit) so a re-save preserves the
    # metadata for every backend; matrix/sparse methods also expose it
    # directly through their own iterations_run attribute.
    engine._snapshot_iterations_run = iterations_run
    if iterations_run is not None and hasattr(engine.method, "iterations_run"):
        engine.method.iterations_run = iterations_run
    plan_payload = fit_metadata.get("plan")
    if plan_payload is not None:
        from repro.core.planner import PlanReport

        try:
            engine._snapshot_plan = PlanReport.from_dict(plan_payload)
        except (KeyError, TypeError, ValueError):
            # The plan is advisory metadata; a malformed entry (hand-edited
            # manifest) must not block reviving an otherwise good snapshot.
            engine._snapshot_plan = None
    return engine


def warm_start_from_snapshot(path: PathLike, graph, engine_cls=None):
    """A snapshot as a *warm-start seed*: revive and refit on a changed graph.

    :func:`read_snapshot` alone serves the scores exactly as persisted --
    right when the graph has not moved since the save.  When it *has* moved
    (a newer collection period, an applied
    :class:`~repro.graph.delta.ClickGraphDelta`), this revives the engine
    and immediately refits on ``graph`` with the snapshot's scores seeding
    the fixpoint, which converges in far fewer iterations than a cold fit
    when the change is small.  Returns a fitted, servable engine bound to
    ``graph``.

    The snapshot's config must have ``SimrankConfig.tolerance > 0``
    (:meth:`RewriteEngine.fit` raises otherwise): without tolerance-based
    early exit a seeded continuation would compute a different result than
    the cold fit it stands in for.
    """
    engine = read_snapshot(path, engine_cls=engine_cls)
    return engine.fit(graph, warm_start=True)


# -------------------------------------------------------------- named store


class EngineSnapshotStore:
    """Named on-disk engine snapshots under one root directory.

    The fitted-engine sibling of :class:`~repro.graph.storage.ClickGraphStore`::

        store = EngineSnapshotStore("engines/")
        store.save("two-week-weighted", engine)       # offline
        engine = store.load("two-week-weighted")      # online, no refit
    """

    def __init__(self, root: PathLike) -> None:
        self._root = Path(root)

    @property
    def root(self) -> Path:
        return self._root

    def path(self, name: str) -> Path:
        """The snapshot directory a name maps to (whether or not it exists)."""
        if not name or name.startswith(".") or "/" in name or "\\" in name:
            raise ValueError(
                f"invalid snapshot name {name!r}: must be a non-empty name "
                "without path separators, not starting with '.' (dotted names "
                "are reserved for in-progress staging directories)"
            )
        return self._root / name

    def save(self, name: str, engine) -> Path:
        """Persist a fitted engine under ``name`` (overwriting any previous)."""
        return write_snapshot(engine, self.path(name))

    def load(self, name: str):
        """Revive the named engine.  Raises ``KeyError`` if unknown."""
        if name not in self:
            raise KeyError(f"no stored engine snapshot named {name!r}")
        return read_snapshot(self.path(name))

    def manifest(self, name: str) -> dict:
        """The named snapshot's manifest (no score-matrix load).

        Raises ``KeyError`` if unknown.
        """
        if name not in self:
            raise KeyError(f"no stored engine snapshot named {name!r}")
        return read_manifest(self.path(name))

    def materialize(self, name: str, path: PathLike) -> Path:
        """Export the named snapshot as a SQLite serving store at ``path``.

        The offline hand-off in one call: revive the snapshotted engine,
        rank and filter its serving lists into a single-file store
        (:meth:`RewriteEngine.export_store <repro.api.engine.RewriteEngine.export_store>`),
        and return the store path -- ready to ship to serving nodes that
        never hold the score matrix.  Raises ``KeyError`` if unknown.
        """
        return self.load(name).export_store(path)

    def delete(self, name: str) -> None:
        """Remove a stored snapshot (no-op when absent or unstorable)."""
        try:
            target = self.path(name)
        except ValueError:
            return  # an invalid name can never hold a snapshot
        if target.is_dir():
            shutil.rmtree(target)

    def list_snapshots(self) -> List[str]:
        """Names of all stored snapshots.

        Dotted directories are skipped: they are the staging areas of
        in-progress (or crashed) saves, never completed snapshots.
        """
        if not self._root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self._root.iterdir()
            if entry.is_dir()
            and not entry.name.startswith(".")
            and (entry / MANIFEST_FILENAME).is_file()
        )

    def __contains__(self, name: str) -> bool:
        try:
            target = self.path(name)
        except ValueError:
            return False  # an invalid name can never hold a snapshot
        return (target / MANIFEST_FILENAME).is_file()

    def __repr__(self) -> str:
        return f"EngineSnapshotStore(root={str(self._root)!r}, snapshots={self.list_snapshots()})"
