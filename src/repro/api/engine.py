"""The fit -> serve facade over the similarity methods and the rewriter.

The paper's deployment story (Section 9.3) computes rewrites offline and
serves them online; :class:`RewriteEngine` is that split as an API.  ``fit``
is the expensive analytics step (SimRank fixpoint over the click graph);
``rewrite`` / ``rewrite_batch`` are the latency-critical serving steps, which
cache each query's filtered top-k rewrite list so repeated calls are O(1)
dictionary lookups instead of O(V) similarity scans.

Typical lifecycle::

    engine = RewriteEngine.from_graph(graph, EngineConfig(method="weighted_simrank"),
                                      bid_terms=bid_terms).fit()
    engine.rewrite("camera")                  # RewriteList, computed once
    engine.rewrite_batch(traffic)             # cached after first sight
    engine.explain("camera", "digital camera")  # why (not) proposed?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.api.config import EngineConfig
from repro.api.registry import create
from repro.core.rewriter import CandidateDecision, QueryRewriter, RewriteList
from repro.core.similarity_base import QuerySimilarityMethod
from repro.graph.click_graph import ClickGraph

__all__ = ["CacheInfo", "Explanation", "RewriteEngine"]

Node = Hashable


@dataclass(frozen=True)
class CacheInfo:
    """Serving-cache statistics since the last fit (or ``clear_cache``)."""

    hits: int
    misses: int
    size: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class Explanation:
    """Why a particular rewrite was (or was not) proposed for a query.

    ``reason`` is ``"accepted"``, one of the filter fates recorded by the
    rewriter (``"not_in_bid_terms"``, ``"duplicate"``,
    ``"beyond_max_rewrites"``), or -- for rewrites that never reached the
    filter pipeline -- ``"below_similarity_floor"`` / ``"not_in_candidate_pool"``.
    ``candidates`` is the full trace of the query's candidate pool.
    """

    query: Node
    rewrite: Node
    similarity: float
    accepted: bool
    rank: Optional[int]
    reason: str
    candidates: Tuple[CandidateDecision, ...]


class RewriteEngine:
    """Single front door for query rewriting: fit once, serve cached top-k."""

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        bid_terms: Optional[Iterable[str]] = None,
        graph: Optional[ClickGraph] = None,
    ) -> None:
        """
        Parameters
        ----------
        config:
            The unified engine configuration; defaults to weighted SimRank
            with the paper's serving knobs.
        bid_terms:
            Queries that received at least one bid; rewrites outside this set
            are filtered out unless ``config.bid_filtering`` is off.
        graph:
            Click graph to fit on; may also be supplied later via
            :meth:`fit` (or up front via :meth:`from_graph`).
        """
        self.config = config or EngineConfig()
        self._bid_terms = set(bid_terms) if bid_terms is not None else None
        method = create(
            self.config.method, config=self.config.similarity, backend=self.config.backend
        )
        self._rewriter = QueryRewriter(
            method,
            bid_terms=self._bid_terms if self.config.bid_filtering else None,
            max_rewrites=self.config.max_rewrites,
            candidate_pool=self.config.candidate_pool,
            min_score=self.config.min_score,
            deduplicate=self.config.deduplicate,
        )
        self._graph = graph
        self._cache: Dict[Node, RewriteList] = {}
        self._hits = 0
        self._misses = 0

    @classmethod
    def from_graph(
        cls,
        graph: ClickGraph,
        config: Optional[EngineConfig] = None,
        bid_terms: Optional[Iterable[str]] = None,
    ) -> "RewriteEngine":
        """Engine bound to a click graph, ready for a no-argument :meth:`fit`."""
        return cls(config=config, bid_terms=bid_terms, graph=graph)

    @classmethod
    def from_dict(
        cls,
        payload: Dict[str, object],
        bid_terms: Optional[Iterable[str]] = None,
        graph: Optional[ClickGraph] = None,
    ) -> "RewriteEngine":
        """Engine built from a serialized :class:`EngineConfig` dictionary."""
        return cls(config=EngineConfig.from_dict(payload), bid_terms=bid_terms, graph=graph)

    def to_dict(self) -> Dict[str, object]:
        """The engine's configuration as a plain dictionary."""
        return self.config.to_dict()

    # --------------------------------------------------------------- fitting

    @property
    def method(self) -> QuerySimilarityMethod:
        """The underlying similarity method instance."""
        return self._rewriter.method

    @property
    def graph(self) -> Optional[ClickGraph]:
        return self._graph

    @property
    def bid_terms(self) -> Optional[frozenset]:
        return frozenset(self._bid_terms) if self._bid_terms is not None else None

    @property
    def is_fitted(self) -> bool:
        return self.method.is_fitted

    def fit(self, graph: Optional[ClickGraph] = None) -> "RewriteEngine":
        """Run the offline analytics step: fit the similarity method.

        Fits on ``graph`` when given, otherwise on the graph bound by
        :meth:`from_graph`.  Clears the serving cache.
        """
        if graph is not None:
            self._graph = graph
        if self._graph is None:
            raise RuntimeError(
                "no click graph to fit on; pass one to fit() or build the "
                "engine with RewriteEngine.from_graph(graph, ...)"
            )
        self._rewriter.fit(self._graph)
        self.clear_cache()
        return self

    # --------------------------------------------------------------- serving

    def rewrite(self, query: Node) -> RewriteList:
        """The filtered, ranked rewrites of one query (cached).

        The cache is unbounded: one entry per distinct query seen, including
        queries with no rewrites.  That matches the paper's offline
        full-precompute deployment; eviction policies for long-tail online
        traffic are a planned scaling follow-up (see ROADMAP.md).
        """
        self._require_fitted()
        cached = self._cache.get(query)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        result = self._rewriter.rewrites_for(query)
        self._cache[query] = result
        return result

    def rewrite_batch(self, queries: Sequence[Node]) -> List[RewriteList]:
        """Rewrite lists for a whole traffic batch, aligned with the input."""
        return [self.rewrite(query) for query in queries]

    def expansions(self, query: Node, max_rewrites: Optional[int] = None) -> List[Node]:
        """Just the rewrite terms of a query, for serving-path expansion."""
        limit = max_rewrites if max_rewrites is not None else self.config.max_rewrites
        return [rewrite.rewrite for rewrite in self.rewrite(query).top(limit)]

    def precompute(self, queries: Optional[Iterable[Node]] = None) -> int:
        """Warm the serving cache offline; returns the number of new entries.

        With no argument, precomputes every query of the fitted click graph --
        the paper's full offline pass.
        """
        self._require_fitted()
        if queries is None:
            queries = self._graph.queries() if self._graph is not None else []
        warmed = 0
        for query in queries:
            if query not in self._cache:
                self.rewrite(query)
                warmed += 1
        return warmed

    # ----------------------------------------------------------- explanation

    def explain(self, query: Node, rewrite: Node) -> Explanation:
        """Trace the filter pipeline to explain one (query, rewrite) decision."""
        self._require_fitted()
        decisions = tuple(self._rewriter.explain_candidates(query))
        for decision in decisions:
            if decision.candidate == rewrite:
                return Explanation(
                    query=query,
                    rewrite=rewrite,
                    similarity=decision.score,
                    accepted=decision.accepted,
                    rank=decision.rank,
                    reason=decision.fate,
                    candidates=decisions,
                )
        similarity = self.method.query_similarity(query, rewrite)
        reason = (
            "below_similarity_floor"
            if similarity <= self.config.min_score
            else "not_in_candidate_pool"
        )
        return Explanation(
            query=query,
            rewrite=rewrite,
            similarity=similarity,
            accepted=False,
            rank=None,
            reason=reason,
            candidates=decisions,
        )

    # ------------------------------------------------------------ cache admin

    def cache_info(self) -> CacheInfo:
        """Hit/miss counters and current size of the serving cache."""
        return CacheInfo(hits=self._hits, misses=self._misses, size=len(self._cache))

    def clear_cache(self) -> None:
        """Drop all cached rewrite lists and reset the hit/miss counters."""
        self._cache.clear()
        self._rewriter.clear_cache()
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------ misc

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError(
                "RewriteEngine has not been fitted; call .fit(graph) "
                "(or .from_graph(graph, ...).fit()) before serving"
            )

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return (
            f"RewriteEngine(method={self.config.method!r}, {state}, "
            f"cached={len(self._cache)})"
        )
