"""The fit -> serve facade over the similarity methods and the rewriter.

The paper's deployment story (Section 9.3) computes rewrites offline and
serves them online; :class:`RewriteEngine` is that split as an API.  ``fit``
is the expensive analytics step (SimRank fixpoint over the click graph);
``rewrite`` / ``rewrite_batch`` are the latency-critical serving steps, which
cache each query's filtered top-k rewrite list so repeated calls are O(1)
dictionary lookups instead of O(V) similarity scans.

Typical lifecycle::

    engine = RewriteEngine.from_graph(graph, EngineConfig(method="weighted_simrank"),
                                      bid_terms=bid_terms).fit()
    engine.rewrite("camera")                  # RewriteList, computed once
    engine.rewrite_batch(traffic)             # cached after first sight
    engine.explain("camera", "digital camera")  # why (not) proposed?

The offline fit survives process restarts: ``engine.save(path)`` writes a
snapshot (score store + config + bid terms, :mod:`repro.api.snapshot`) and
``RewriteEngine.load(path)`` revives a servable engine without re-running
the fixpoint.  The serving cache is bounded by ``EngineConfig.cache_size``
(LRU eviction; ``None`` keeps every entry for the paper's full-precompute
mode).

Serving can also run without the score matrix resident at all:
``engine.export_store(path)`` materializes the per-query rewrite lists
into a single-file SQLite serving store (:mod:`repro.store`) and
``RewriteEngine.from_store(path)`` revives a *serving-only* engine that
answers ``rewrite`` / ``rewrite_batch`` / ``expansions`` with indexed
point lookups through the same LRU cache -- byte-equal results, resident
memory O(cache) instead of O(nnz).  Store-backed engines cannot ``fit`` /
``refresh`` / ``save`` / ``explain`` / ``export_store`` (those raise
:class:`~repro.store.base.ServingOnlyEngineError`); refit the original
engine and re-export instead.

The fit also survives *graph change*: ``engine.refresh(delta)`` applies a
:class:`~repro.graph.delta.ClickGraphDelta` to the bound graph, refits
warm-started from the current scores and invalidates only the cache
entries whose rewrites could differ -- the incremental path for click
graphs that shift continuously under serving traffic.

Thread-safety contract
----------------------
The *serving* reads -- ``rewrite`` / ``rewrite_batch`` / ``expansions`` /
``serving_profile`` -- are safe to call from multiple threads on one
fitted engine: the similarity scan is a pure read of the fitted score
store and the serving cache is guarded by an internal lock.  The
*control-plane* operations -- ``fit``, ``refresh``, ``precompute``,
``clear_cache``, ``save`` -- mutate engine state in multiple steps and
must never run concurrently with each other or with serving reads on the
same instance.  Deployments that need to refresh under live traffic take
:meth:`RewriteEngine.copy` first, refresh the copy off to the side and
atomically publish it (the copy-on-write swap implemented by
:class:`repro.serving.EngineHolder`); readers holding the old engine keep
seeing a fully consistent pre-refresh state.
"""

from __future__ import annotations

import copy as _copy
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.api.config import EngineConfig
from repro.api.registry import create
from repro.core import faults
from repro.core.rewriter import CandidateDecision, QueryRewriter, RewriteList
from repro.core.similarity_base import QuerySimilarityMethod
from repro.graph.click_graph import ClickGraph
from repro.graph.components import reachable_queries
from repro.graph.delta import ClickGraphDelta

if TYPE_CHECKING:
    from repro.core.planner import PlanReport
    from repro.store.base import ServingStore

__all__ = ["CacheInfo", "Explanation", "RefreshInfo", "RewriteEngine"]

Node = Hashable
PathLike = Union[str, Path]


@dataclass(frozen=True)
class CacheInfo:
    """Serving-cache statistics since the last fit (or ``clear_cache``).

    ``capacity`` is the configured LRU bound (``None`` = unbounded) and
    ``evictions`` counts entries dropped to respect it; eviction never
    changes served results, only whether a re-seen query costs a recompute.
    """

    hits: int
    misses: int
    size: int
    evictions: int = 0
    capacity: Optional[int] = None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class RefreshInfo:
    """What one :meth:`RewriteEngine.refresh` call did.

    ``affected_queries`` counts the queries whose rewrites could have
    changed (every query connected to a changed edge, in the graph state
    before or after the delta); ``invalidated_entries`` of those were
    actually cached and got dropped.  Invalidations are not evictions --
    ``CacheInfo.evictions`` still counts only capacity-driven drops.  A
    no-op (empty) delta skips the refit entirely: ``refit`` is False and
    every cached entry survives.  ``warm_started`` reports whether the
    refit was seeded with the previous scores; it is False when
    ``SimrankConfig.tolerance`` is 0, where the fixpoint is defined as
    exactly ``iterations`` steps from the identity and a seeded
    continuation would compute a different (further-converged) result.
    """

    changes: int
    affected_queries: int
    invalidated_entries: int
    refit: bool
    warm_started: bool = False


@dataclass(frozen=True)
class Explanation:
    """Why a particular rewrite was (or was not) proposed for a query.

    ``reason`` is ``"accepted"``, one of the filter fates recorded by the
    rewriter (``"not_in_bid_terms"``, ``"duplicate"``,
    ``"beyond_max_rewrites"``), or -- for rewrites that never reached the
    filter pipeline -- ``"below_similarity_floor"`` / ``"not_in_candidate_pool"``.
    ``candidates`` is the full trace of the query's candidate pool.
    """

    query: Node
    rewrite: Node
    similarity: float
    accepted: bool
    rank: Optional[int]
    reason: str
    candidates: Tuple[CandidateDecision, ...]


class RewriteEngine:
    """Single front door for query rewriting: fit once, serve cached top-k."""

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        bid_terms: Optional[Iterable[str]] = None,
        graph: Optional[ClickGraph] = None,
    ) -> None:
        """
        Parameters
        ----------
        config:
            The unified engine configuration; defaults to weighted SimRank
            with the paper's serving knobs.
        bid_terms:
            Queries that received at least one bid; rewrites outside this set
            are filtered out unless ``config.bid_filtering`` is off.
        graph:
            Click graph to fit on; may also be supplied later via
            :meth:`fit` (or up front via :meth:`from_graph`).
        """
        self.config = config or EngineConfig()
        self._bid_terms = set(bid_terms) if bid_terms is not None else None
        method = create(
            self.config.method,
            config=self.config.similarity,
            backend=self.config.backend,
            n_jobs=self.config.n_jobs,
            executor=self.config.executor,
        )
        self._rewriter = QueryRewriter(
            method,
            bid_terms=self._bid_terms if self.config.bid_filtering else None,
            max_rewrites=self.config.max_rewrites,
            candidate_pool=self.config.candidate_pool,
            min_score=self.config.min_score,
            deduplicate=self.config.deduplicate,
        )
        self._graph = graph
        #: What the most recent refresh(delta) call did (None before any).
        self.last_refresh: Optional[RefreshInfo] = None
        #: guarded-by: _cache_lock
        self._cache: "OrderedDict[Node, RewriteList]" = OrderedDict()
        #: Guards the serving cache and its counters so concurrent
        #: ``rewrite`` calls from executor threads stay consistent; the
        #: control-plane operations (fit/refresh/precompute) are NOT made
        #: concurrency-safe by this lock -- see the module docstring.
        self._cache_lock = threading.Lock()
        #: guarded-by: _cache_lock
        self._hits = 0
        #: guarded-by: _cache_lock
        self._misses = 0
        #: guarded-by: _cache_lock
        self._evictions = 0
        #: Snapshot-carried state (set by repro.api.snapshot.read_snapshot,
        #: superseded by a fresh fit): the fitted graph's query set -- so
        #: precompute() on a revived engine warms exactly what the original
        #: fitted engine would have -- and the recorded fit iteration count.
        self._precompute_universe: Optional[List[Node]] = None
        self._snapshot_iterations_run: Optional[int] = None
        self._snapshot_graph_fingerprint: Optional[Dict[str, int]] = None
        #: Plan recorded in a loaded snapshot's manifest (the decision the
        #: ``backend="auto"`` planner made for the snapshotted fit); live
        #: fits read the plan off the method instead.
        self._snapshot_plan = None
        #: Fit generation of the method at restore time; carried snapshot
        #: state is trusted only while the method still holds that fit.
        self._snapshot_state_generation: Optional[int] = None
        #: The method fit generation the serving caches were built against;
        #: an out-of-band method.fit()/restore() bumps the method's counter
        #: and the next serve drops the stale caches (see _require_fitted).
        self._served_generation: Optional[int] = None
        #: Serving source for store-backed engines (:meth:`from_store`);
        #: when set, cache misses read materialized rewrite lists from the
        #: store instead of running the similarity scan, and the
        #: control-plane operations raise ServingOnlyEngineError.
        self._store: Optional["ServingStore"] = None

    @classmethod
    def from_graph(
        cls,
        graph: ClickGraph,
        config: Optional[EngineConfig] = None,
        bid_terms: Optional[Iterable[str]] = None,
    ) -> "RewriteEngine":
        """Engine bound to a click graph, ready for a no-argument :meth:`fit`."""
        return cls(config=config, bid_terms=bid_terms, graph=graph)

    @classmethod
    def from_dict(
        cls,
        payload: Dict[str, object],
        bid_terms: Optional[Iterable[str]] = None,
        graph: Optional[ClickGraph] = None,
    ) -> "RewriteEngine":
        """Engine built from a serialized :class:`EngineConfig` dictionary."""
        return cls(config=EngineConfig.from_dict(payload), bid_terms=bid_terms, graph=graph)

    def to_dict(self) -> Dict[str, object]:
        """The engine's configuration as a plain dictionary."""
        return self.config.to_dict()

    # --------------------------------------------------------------- fitting

    @property
    def method(self) -> QuerySimilarityMethod:
        """The underlying similarity method instance."""
        return self._rewriter.method

    @property
    def graph(self) -> Optional[ClickGraph]:
        return self._graph

    @property
    def bid_terms(self) -> Optional[frozenset]:
        return frozenset(self._bid_terms) if self._bid_terms is not None else None

    @property
    def is_fitted(self) -> bool:
        return self._store is not None or self.method.is_fitted

    @property
    def serving_store(self) -> Optional["ServingStore"]:
        """The store a :meth:`from_store` engine serves from (else ``None``)."""
        return self._store

    @property
    def plan_report(self) -> Optional[PlanReport]:
        """The ``backend="auto"`` planner's decision for the held fit.

        A :class:`~repro.core.planner.PlanReport` when the engine's method
        planned its last fit (``backend="auto"``), the plan restored from a
        snapshot manifest on a revived engine, or ``None`` for fixed
        backends and unfitted engines.
        """
        plan = getattr(self.method, "plan", None)
        if plan is not None:
            return plan
        if self._snapshot_plan is not None and self._snapshot_state_fresh():
            return self._snapshot_plan
        return None

    def fit(
        self, graph: Optional[ClickGraph] = None, warm_start: bool = False
    ) -> "RewriteEngine":
        """Run the offline analytics step: fit the similarity method.

        Fits on ``graph`` when given, otherwise on the graph bound by
        :meth:`from_graph`.  Clears the serving cache.

        With ``warm_start=True`` the method's current query scores -- a
        previous fit's, or the store a snapshot :meth:`load` restored --
        seed the fixpoint iteration instead of the identity start, so a fit
        on a mildly changed graph converges in far fewer iterations (pair
        it with a positive ``SimrankConfig.tolerance``; see
        :meth:`~repro.core.similarity_base.QuerySimilarityMethod.fit`).
        This is how a snapshot doubles as a warm-start seed::

            engine = RewriteEngine.load("engines/two-week-weighted")
            engine.fit(todays_graph, warm_start=True)   # cheap refit
        """
        self._ensure_not_store_backed("fit")
        # Validate before rebinding self._graph: a rejected warm start must
        # not leave engine.graph pointing at a graph the held scores (and a
        # later save()'s recorded fingerprint) were never fitted on.
        if warm_start:
            if not self.method.is_fitted:
                raise RuntimeError(
                    "fit(warm_start=True) needs previous scores to seed from; "
                    "fit cold first or load a snapshot"
                )
            if not self._warm_start_sound():
                raise RuntimeError(
                    "fit(warm_start=True) needs SimrankConfig.tolerance > 0: "
                    "with tolerance 0 the result is defined as exactly "
                    "`iterations` steps from the identity, and continuing "
                    "from a seed would compute a different (further-"
                    "converged) result -- set a tolerance or fit cold"
                )
        if graph is not None:
            self._graph = graph
        if self._graph is None:
            raise RuntimeError(
                "no click graph to fit on; pass one to fit() or build the "
                "engine with RewriteEngine.from_graph(graph, ...)"
            )
        if warm_start:
            self.method.fit(self._graph, initial_scores=self.method.similarities())
        else:
            # Cold path stays positional so method subclasses written
            # against the pre-warm-start fit(graph) signature keep working.
            self.method.fit(self._graph)
        self._mark_fresh_fit()
        self.clear_cache()
        return self

    def refresh(self, delta: ClickGraphDelta) -> "RewriteEngine":
        """Bring a fitted engine forward over a click-graph delta.

        Applies the delta to the bound graph, refits the similarity method
        warm-started from the current scores (the sharded backend
        additionally reuses every untouched component verbatim -- see
        :class:`~repro.core.simrank_sharded.ShardedSimrank`), and drops only
        the cached rewrite lists whose results could have changed: the
        queries connected to a changed edge, before or after the delta.
        SimRank-family scores never cross component boundaries, so every
        other cached entry still serves correct rewrites.  (With the
        matrix/sparse backends the surviving entries' *scores* may differ
        from a fresh recompute by up to the convergence tolerance; the
        sharded backend reuses untouched components' scores verbatim.)

        Warm-start seeding requires tolerance-based early exit.  With
        ``SimrankConfig.tolerance == 0`` the method's result is *defined*
        as exactly ``iterations`` Jacobi steps from the identity, and
        continuing from a seed would silently compute a further-converged,
        different result -- so the refit is cold instead.  Selective cache
        invalidation stays exact there: the iteration never mixes
        components, so a cold refit reproduces untouched components'
        scores bit-identically.

        An empty delta is a true no-op: no refit, every cache entry kept.
        What happened is recorded in :attr:`last_refresh`.  Raises
        ``RuntimeError`` on an unfitted engine or one revived from a
        snapshot (which carries no graph to apply the delta to -- use
        ``fit(graph, warm_start=True)`` there instead).  If the refit
        itself fails, the delta is rolled back before the error propagates,
        so the engine keeps serving its consistent pre-refresh state and
        the same refresh can be retried.

        **Thread-safety contract.**  ``refresh`` mutates this engine in
        place across multiple steps -- the bound graph first, then (only
        after the full replacement score store has been computed -- see
        :meth:`~repro.core.similarity_base.QuerySimilarityMethod.fit`) the
        published scores, then the serving cache -- so it must never run
        concurrently with serving reads *on the same instance*: a reader
        interleaved between those steps could pair new-graph rewrites with
        old scores.  For zero-downtime refresh under live traffic, take
        :meth:`copy` first, refresh the copy and publish it atomically
        (:class:`repro.serving.EngineHolder` packages exactly this
        copy-on-write swap); readers holding the old engine then never
        observe partial refresh state.
        """
        self._ensure_not_store_backed("refresh")
        faults.fire("engine.refresh")
        self._require_fitted()
        if self._graph is None:
            raise RuntimeError(
                "refresh() needs the fitted click graph, and engines revived "
                "from a snapshot carry none; call fit(graph, warm_start=True) "
                "with the updated graph instead"
            )
        if delta.is_empty:
            self.last_refresh = RefreshInfo(
                changes=0,
                affected_queries=0,
                invalidated_entries=0,
                refit=False,
                warm_started=False,
            )
            return self
        touched_queries = delta.touched_queries()
        touched_ads = delta.touched_ads()
        # Queries whose scores could change: everything connected to a
        # touched node in the *old* graph (a removal may split a component;
        # the split-off remainder changes too) union the *new* graph (an
        # addition may merge previously untouched components in).
        affected = reachable_queries(self._graph, touched_queries, touched_ads)
        inverse = delta.inverted(self._graph)  # rollback, captured pre-apply
        faults.fire("delta.apply")
        self._graph.apply_delta(delta)
        if delta.added or delta.removed:
            # Only topology changes can alter reachability; for the common
            # stats-only delta the post-apply components are the pre-apply
            # ones and the second traversal would re-walk them for nothing.
            affected |= reachable_queries(self._graph, touched_queries, touched_ads)
        affected |= touched_queries  # endpoints left isolated on either side
        warm = self._warm_start_sound()
        try:
            if warm:
                self.method.fit(
                    self._graph, initial_scores=self.method.similarities()
                )
            else:
                self.method.fit(self._graph)
        except BaseException:
            # A failed refit must not leave the engine half-refreshed: the
            # scores, cache and last_refresh are still pre-delta, so put the
            # graph back to match and let the caller see the error.
            self._graph.apply_delta(inverse)
            raise
        self._rewriter.clear_cache()
        self._mark_fresh_fit()
        invalidated = 0
        with self._cache_lock:
            for query in [query for query in self._cache if query in affected]:
                del self._cache[query]
                invalidated += 1
        self.last_refresh = RefreshInfo(
            changes=len(delta),
            affected_queries=len(affected),
            invalidated_entries=invalidated,
            refit=True,
            warm_started=warm,
        )
        return self

    def copy(self) -> "RewriteEngine":
        """An independent engine with the same fitted state and cache.

        The copy shares nothing mutable with the original: the click graph,
        the fitted similarity method (scores, shard state) and the serving
        cache are all duplicated, so mutating one engine -- ``refresh``,
        ``fit``, cache churn -- never affects the other.  This is the
        copy-on-write half of the zero-downtime serving swap: refresh the
        copy off to the side while the original keeps serving, then publish
        the copy atomically (see :class:`repro.serving.EngineHolder`).

        Cached rewrite lists themselves are shared (they are immutable
        value objects), which keeps the copy cheap relative to a refit.
        """
        clone = type(self)(config=self.config, bid_terms=self._bid_terms)
        memo: Dict[int, object] = {}
        if self._graph is not None:
            clone._graph = self._graph.copy()
            # Seed deepcopy's memo so the method's internal graph reference
            # lands on the clone's graph copy, not a third graph instance.
            memo[id(self._graph)] = clone._graph
        clone._rewriter = _copy.deepcopy(self._rewriter, memo)
        with self._cache_lock:
            clone._cache = OrderedDict(self._cache)
            clone._hits = self._hits
            clone._misses = self._misses
            clone._evictions = self._evictions
        clone.last_refresh = self.last_refresh
        clone._precompute_universe = (
            list(self._precompute_universe)
            if self._precompute_universe is not None
            else None
        )
        clone._snapshot_iterations_run = self._snapshot_iterations_run
        clone._snapshot_graph_fingerprint = (
            dict(self._snapshot_graph_fingerprint)
            if self._snapshot_graph_fingerprint is not None
            else None
        )
        clone._snapshot_state_generation = self._snapshot_state_generation
        clone._snapshot_plan = self._snapshot_plan
        clone._served_generation = self._served_generation
        # Stores are shared, not duplicated: lookups are lock-guarded pure
        # reads, and a store-backed engine has no mutable fitted state for
        # the copies to diverge on.
        clone._store = self._store
        return clone

    def _warm_start_sound(self) -> bool:
        """Whether seeding the refit preserves the method's result definition.

        Only with tolerance-based early exit does a warm start converge to
        the same answer as a cold fit; at ``tolerance == 0`` the result is
        the fixed iteration count from the identity, which a seed would
        silently overshoot.
        """
        return self.config.similarity.tolerance > 0

    def _mark_fresh_fit(self) -> None:
        """Reset per-fit bookkeeping: a fresh fit supersedes snapshot state."""
        self._precompute_universe = None
        self._snapshot_iterations_run = None
        self._snapshot_graph_fingerprint = None
        self._snapshot_state_generation = None
        self._snapshot_plan = None
        self._served_generation = getattr(self.method, "_fit_generation", None)

    # --------------------------------------------------------------- serving

    def rewrite(self, query: Node) -> RewriteList:
        """The filtered, ranked rewrites of one query (cached).

        With ``config.cache_size=None`` (the default) the cache is unbounded
        -- one entry per distinct query seen, including queries with no
        rewrites -- matching the paper's offline full-precompute deployment.
        A positive ``cache_size`` bounds it with least-recently-used
        eviction for long-tail online traffic; eviction only ever costs a
        recompute on the next sighting, never a different result.

        Safe to call from multiple threads: cache reads and inserts are
        lock-guarded, and the similarity scan itself is a pure read of the
        fitted scores.  Two threads racing on the same cold query both
        compute the (identical, deterministic) result and the second insert
        is a harmless overwrite -- both count as misses.
        """
        self._require_fitted()
        with self._cache_lock:
            cached = self._cache.get(query)
            if cached is not None:
                self._hits += 1
                if self.config.cache_size is not None:
                    # Recency only matters when eviction can happen; the
                    # unbounded hit path stays a read-only dictionary lookup.
                    self._cache.move_to_end(query)
                return cached
            self._misses += 1
        # The engine is the single cache layer: misses bypass the rewriter's
        # unbounded memo, otherwise the LRU bound would not bound anything.
        # Computed outside the lock -- this is the expensive part, and
        # holding the lock through it would serialize concurrent serving.
        result = self._compute_rewrites(query)
        with self._cache_lock:
            self._cache[query] = result
            capacity = self.config.cache_size
            if capacity is not None:
                while len(self._cache) > capacity:
                    self._cache.popitem(last=False)
                    self._evictions += 1
        return result

    def _compute_rewrites(self, query: Node) -> RewriteList:
        """One cache miss: the store's materialized list or a live scan."""
        if self._store is not None:
            return self._store.rewrites(query)
        return self._rewriter.compute_rewrites(query)

    def rewrite_batch(self, queries: Sequence[Node]) -> List[RewriteList]:
        """Rewrite lists for a whole traffic batch, aligned with the input.

        Repeated queries within the batch are deduplicated: each unique
        query hits the score store / serving cache exactly once and the
        duplicates are served from a batch-local memo (micro-batched online
        traffic makes duplicate-heavy batches the common case, and with a
        bounded cache a duplicate re-seen after churn would otherwise pay a
        full recompute).  Duplicate occurrences count as cache hits in
        :meth:`cache_info` -- they are served without a similarity scan.
        """
        memo: Dict[Node, RewriteList] = {}
        results: List[RewriteList] = []
        duplicates = 0
        for query in queries:
            seen = memo.get(query)
            if seen is None:
                seen = self.rewrite(query)
                memo[query] = seen
            else:
                duplicates += 1
            results.append(seen)
        if duplicates:
            with self._cache_lock:
                self._hits += duplicates
        return results

    def serving_profile(
        self, queries: Sequence[Node]
    ) -> List[Tuple[Node, Node, int, float]]:
        """Flattened ``(query, rewrite, rank, score)`` rows for a batch.

        The exact serving profile: two engines serve equivalently iff their
        profiles over the same queries are equal.  The cross-backend snapshot
        equivalence tests and ``benchmarks/bench_engine_snapshot.py`` compare
        exactly this.
        """
        return [
            row for result in self.rewrite_batch(queries) for row in result.as_tuples()
        ]

    def expansions(self, query: Node, max_rewrites: Optional[int] = None) -> List[Node]:
        """Just the rewrite terms of a query, for serving-path expansion."""
        limit = max_rewrites if max_rewrites is not None else self.config.max_rewrites
        return [rewrite.rewrite for rewrite in self.rewrite(query).top(limit)]

    def precompute(self, queries: Optional[Iterable[Node]] = None) -> int:
        """Warm the serving cache offline; returns the number of new entries.

        With no argument, precomputes every query of the fitted click graph
        -- the paper's full offline pass.  On an engine revived from a
        snapshot (no graph attached) it warms the snapshot's recorded query
        universe -- the same set the fitted engine would have warmed -- or,
        for snapshots without one, every query of the restored score store.

        With a bounded cache, only the entries that would survive a full LRU
        replay of the sequence are computed -- queries the replay would evict
        on arrival are skipped outright, and already-cached survivors are
        recency-refreshed.  The end-state cache matches the replay exactly,
        without the compute-then-discard churn.
        """
        self._require_fitted()
        if queries is None:
            if self._store is not None:
                queries = self._store.queries()
            elif self._graph is not None:
                queries = self._graph.queries()
            elif (
                self._precompute_universe is not None
                and self._snapshot_state_fresh()
            ):
                queries = self._precompute_universe
            else:
                queries = self._score_store_queries()
        capacity = self.config.cache_size
        if capacity is not None:
            return self._warm_bounded(queries, capacity)
        warmed = 0
        for query in queries:
            # Membership check under the lock, rewrite() outside it: the
            # lock is not reentrant and rewrite() takes it to fill the
            # cache, so holding it across the call would self-deadlock.
            with self._cache_lock:
                cached = query in self._cache
            if not cached:
                self.rewrite(query)
                warmed += 1
        return warmed

    def _warm_bounded(self, queries: Iterable[Node], capacity: int) -> int:
        """Warm a bounded cache without computing entries that cannot survive.

        A symbolic LRU replay over the current cache contents plus the
        stream determines the end-state entries first; only those are then
        computed (misses) or recency-refreshed (existing entries), in final
        recency order, so the real cache finishes in exactly the state the
        naive query-by-query replay would produce.
        """
        with self._cache_lock:
            simulated: "OrderedDict[Node, None]" = OrderedDict(
                (query, None) for query in self._cache
            )
        for query in queries:
            if query in simulated:
                simulated.move_to_end(query)
            else:
                simulated[query] = None
                if len(simulated) > capacity:
                    simulated.popitem(last=False)
        # Drop the entries the replay evicts *before* warming: otherwise an
        # insertion mid-loop could push out a not-yet-refreshed survivor and
        # force the recompute this path exists to avoid.
        with self._cache_lock:
            for query in [
                query for query in self._cache if query not in simulated
            ]:
                del self._cache[query]
                self._evictions += 1
        warmed = 0
        for query in simulated:
            # Same split as precompute(): check-and-touch under the lock,
            # rewrite() (which takes the lock itself) outside it.
            with self._cache_lock:
                cached = query in self._cache
                if cached:
                    self._cache.move_to_end(query)
            if not cached:
                self.rewrite(query)
                warmed += 1
        return warmed

    def _snapshot_state_fresh(self) -> bool:
        """Whether snapshot-carried metadata still describes the held fit.

        An out-of-band ``method.fit()``/``method.restore()`` bumps the
        method's fit generation past the one recorded at load time, at which
        point the carried universe/fingerprint/iteration metadata describe a
        different fit and must be ignored.
        """
        return (
            self._snapshot_state_generation is not None
            and self._snapshot_state_generation
            == getattr(self.method, "_fit_generation", None)
        )

    def _score_store_queries(self) -> List[Node]:
        """Every query the fitted score store knows about (snapshot serving)."""
        scores = self.method.similarities()
        index = getattr(scores, "index", None)
        if index is not None:
            return list(index)
        return list(scores.nodes())

    def _serving_universe(self) -> List[Node]:
        """Every query serving must answer, in deterministic (repr) order.

        The fitted graph's query set when a graph is bound, the recorded
        snapshot universe on a revived engine, the score store's queries as
        the last resort -- the same precedence :meth:`precompute` uses.
        Store exports (:meth:`export_store`,
        :meth:`~repro.store.memory.InMemoryServingStore.from_engine`)
        persist exactly this set as the store's query universe.
        """
        if self._store is not None:
            return self._store.queries()
        if self._graph is not None:
            universe = self._graph.queries()
        elif self._precompute_universe is not None and self._snapshot_state_fresh():
            universe = self._precompute_universe
        else:
            universe = self._score_store_queries()
        return sorted(universe, key=repr)

    # ----------------------------------------------------------- explanation

    def explain(self, query: Node, rewrite: Node) -> Explanation:
        """Trace the filter pipeline to explain one (query, rewrite) decision."""
        self._ensure_not_store_backed("explain")
        self._require_fitted()
        decisions = tuple(self._rewriter.explain_candidates(query))
        for decision in decisions:
            if decision.candidate == rewrite:
                return Explanation(
                    query=query,
                    rewrite=rewrite,
                    similarity=decision.score,
                    accepted=decision.accepted,
                    rank=decision.rank,
                    reason=decision.fate,
                    candidates=decisions,
                )
        similarity = self.method.query_similarity(query, rewrite)
        reason = (
            "below_similarity_floor"
            if similarity <= self.config.min_score
            else "not_in_candidate_pool"
        )
        return Explanation(
            query=query,
            rewrite=rewrite,
            similarity=similarity,
            accepted=False,
            rank=None,
            reason=reason,
            candidates=decisions,
        )

    # ------------------------------------------------------------ cache admin

    def cache_info(self) -> CacheInfo:
        """Hit/miss/eviction counters and current size of the serving cache."""
        with self._cache_lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                size=len(self._cache),
                evictions=self._evictions,
                capacity=self.config.cache_size,
            )

    def clear_cache(self) -> None:
        """Drop all cached rewrite lists and reset every cache counter."""
        with self._cache_lock:
            self._cache.clear()
            self._rewriter.clear_cache()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    # ------------------------------------------------------------ persistence

    def save(self, path: PathLike) -> Path:
        """Write the fitted engine as a snapshot directory; returns its path.

        The snapshot (see :mod:`repro.api.snapshot`) holds the similarity
        score store, the :class:`EngineConfig`, the bid terms and fit
        metadata -- everything :meth:`load` needs to serve identical rewrite
        lists without re-running the SimRank fixpoint.  The click graph
        itself is *not* included (persist it with
        :class:`~repro.graph.storage.ClickGraphStore` if refitting later
        matters).
        """
        self._ensure_not_store_backed("save")
        from repro.api.snapshot import write_snapshot

        return write_snapshot(self, path)

    @classmethod
    def load(cls, path: PathLike) -> "RewriteEngine":
        """Revive a servable engine from a :meth:`save` snapshot, without refitting.

        The restored engine serves identical rewrite lists to the engine
        that was saved; it carries no click graph, so :meth:`fit` requires
        an explicit graph and :meth:`precompute` warms the snapshot's query
        universe.
        """
        from repro.api.snapshot import read_snapshot

        return read_snapshot(path, engine_cls=cls)

    def export_store(self, path: PathLike) -> Path:
        """Materialize the fitted serving lists as a SQLite store file.

        Ranks every query's candidate pool inside the database (a
        window-function query under the exact in-memory tie-break), runs
        the Section 9.3 filter pipeline over the pools and writes the
        surviving per-query top-k lists into a single crash-safe SQLite
        file -- see :mod:`repro.store.sqlite`.  :meth:`from_store` then
        serves byte-equal rewrite lists from it with O(cache) resident
        memory.  Returns the store path.
        """
        self._ensure_not_store_backed("export_store")
        from repro.store.sqlite import export_serving_store

        return export_serving_store(self, path)

    @classmethod
    def from_store(
        cls, source: Union[PathLike, "ServingStore"]
    ) -> "RewriteEngine":
        """Revive a serving-only engine from an exported serving store.

        ``source`` is a store path (opened as a
        :class:`~repro.store.sqlite.SqliteServingStore`) or an already-open
        :class:`~repro.store.base.ServingStore`.  The engine rebuilds its
        serving knobs (``cache_size``, ``max_rewrites``) from the config
        recorded in the store and answers ``rewrite`` / ``rewrite_batch`` /
        ``expansions`` through the usual LRU cache, each miss being one
        store lookup.  Control-plane operations (``fit``, ``refresh``,
        ``save``, ``explain``, ``export_store``) raise
        :class:`~repro.store.base.ServingOnlyEngineError`: the store holds
        materialized lists, not the score matrix.
        """
        from repro.store.base import ServingStore
        from repro.store.sqlite import SqliteServingStore

        store = source if isinstance(source, ServingStore) else SqliteServingStore(source)
        payload = store.engine_config()
        config = EngineConfig.from_dict(payload) if payload else None
        engine = cls(config=config)
        engine._store = store
        return engine

    # ------------------------------------------------------------------ misc

    def _ensure_not_store_backed(self, operation: str) -> None:
        if self._store is None:
            return
        from repro.store.base import ServingOnlyEngineError

        raise ServingOnlyEngineError(
            f"{operation}() is unavailable on a store-backed engine: it "
            "serves materialized rewrite lists, not the fitted score "
            "matrix; refit (or load) the original engine and re-export "
            "the store instead"
        )

    def _require_fitted(self) -> None:
        if self._store is not None:
            # Store-backed serving has no method fit generation to track;
            # the store's materialized lists are immutable.
            return
        if not self.is_fitted:
            raise RuntimeError(
                "RewriteEngine has not been fitted; call .fit(graph) "
                "(or .from_graph(graph, ...).fit()) before serving"
            )
        # Out-of-band method.fit()/method.restore() (not via this engine)
        # bumps the method's fit generation; serving stale cached rewrite
        # lists next to the new scores would silently mix two fits.
        generation = getattr(self.method, "_fit_generation", None)
        if generation != self._served_generation:
            self.clear_cache()
            self._served_generation = generation

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        if self._store is not None:
            state = f"store-backed ({self._store.kind})"
        with self._cache_lock:
            cached = len(self._cache)
        return (
            f"RewriteEngine(method={self.config.method!r}, {state}, "
            f"cached={cached})"
        )
