"""Staged writes with atomic rename-publish, shared by every exporter.

A snapshot directory (:mod:`repro.api.snapshot`) and a SQLite serving store
(:mod:`repro.store.sqlite`) have the same publication problem: the artifact
is written in multiple steps, and a crash mid-write must never leave a
half-written version *discoverable* under the published name -- a torn
snapshot would serve silently wrong scores, a torn database would fail (or
worse, answer) point lookups.  Both therefore write into a dotted sibling
staging path and swap it into place only once complete.

:func:`staged_write` packages that discipline once:

* The staging path is ``.{name}.staging-{pid}-{seq}`` next to the target --
  dotted, so named-store listings and sibling-fallback scans never see it;
  pid + per-process sequence, so concurrent saves (threads or processes)
  of the same name never collide.
* Debris of earlier *crashed* writers of the same name is swept first, but
  only when the pid embedded in the name is provably dead -- a live pid is
  a concurrent writer mid-flight (possibly another thread of this very
  process) and must not be touched.
* Publication uses renames only.  A completed artifact is never deleted out
  from under a concurrent reader: a directory target is atomically moved
  aside and reclaimed only after the swap succeeds, and a failed publish
  restores the newest displaced version so the name never ends up empty.
  File targets need no displacement -- ``os.replace`` overwrites a file
  atomically -- so their publish is a single rename.

The helper is pure stdlib and imports nothing from the rest of the package,
so both the snapshot layer and the store layer can use it without import
cycles.
"""

from __future__ import annotations

import contextlib
import glob as globmodule
import itertools
import os
import shutil
from pathlib import Path
from typing import Callable, Iterator, Type

__all__ = ["staged_write"]

#: Distinguishes staging paths created by one process (thread-safe names;
#: the pid alone would collide across concurrent same-name saves).
_STAGING_SEQUENCE = itertools.count()


def _pid_is_alive(pid: int) -> bool:
    """Best-effort liveness probe; conservative (alive) when unknowable.

    ``os.kill(pid, 0)`` is a pure probe only on POSIX -- on Windows any
    signal value outside the CTRL events *terminates* the target -- so
    non-POSIX platforms report every pid as alive and leave staging debris
    for manual (or POSIX-side) cleanup rather than risk killing a process.
    """
    if os.name != "posix":
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


def _remove(path: Path) -> None:
    """Delete a staging path of either kind, best-effort."""
    if path.is_dir():
        shutil.rmtree(path, ignore_errors=True)
    else:
        with contextlib.suppress(OSError):
            path.unlink()


def _sweep_debris(target: Path, staging_prefix: str) -> None:
    """Reclaim staging paths of earlier crashed writers of this name.

    Dotted staging paths are invisible to named-store listings, so nothing
    else would ever reclaim them.  A staging path whose pid suffix names a
    live process is a concurrent write in flight and is left alone; only
    dead-pid (or unparsable) debris is removed.
    """
    for stale in target.parent.glob(globmodule.escape(staging_prefix) + "*"):
        pid_text = stale.name[len(staging_prefix):].split("-", 1)[0]
        if pid_text.isdigit() and _pid_is_alive(int(pid_text)):
            continue
        _remove(stale)


@contextlib.contextmanager
def staged_write(
    target: Path,
    *,
    directory: bool,
    error: Type[Exception],
    on_complete: Callable[[Path], None] = lambda staging: None,
) -> Iterator[Path]:
    """Yield a staging path next to ``target``; publish atomically on success.

    Parameters
    ----------
    target:
        The final published path.  The parent directory is created.
    directory:
        True when the artifact is a directory (the staging directory is
        created before the body runs); False for a single file (the body
        creates the file at the yielded path itself).
    error:
        Exception type raised when the rename-publish cannot win against a
        concurrent writer that keeps republishing the same name.
    on_complete:
        Called with the staging path after the body finishes but before the
        swap -- the hook for injected torn-write corruption in tests.

    On any exception from the body the staging path is removed, the newest
    displaced previous version (if the publish had begun) is restored, and
    the exception propagates: a crashed write can never leave a half-written
    artifact discoverable under ``target``.
    """
    target = Path(target)
    target.parent.mkdir(parents=True, exist_ok=True)
    staging_prefix = f".{target.name}.staging-"
    _sweep_debris(target, staging_prefix)
    staging = target.parent / (
        f"{staging_prefix}{os.getpid()}-{next(_STAGING_SEQUENCE)}"
    )
    if directory:
        staging.mkdir()
    displaced = []
    try:
        yield staging
        on_complete(staging)
        if not directory:
            # os.replace overwrites a file atomically; readers holding an
            # open handle on the previous version keep reading it (POSIX).
            os.replace(staging, target)
            return
        # Publish with renames only -- a completed artifact is never
        # rmtree'd out from under a concurrent reader or writer; the
        # previous version is atomically moved aside and reclaimed after
        # the swap succeeds.
        for _ in range(3):
            aside = target.parent / (
                f"{staging_prefix}{os.getpid()}-{next(_STAGING_SEQUENCE)}.old"
            )
            try:
                os.replace(target, aside)
                displaced.append(aside)
            except FileNotFoundError:
                pass  # nothing (left) to move aside
            try:
                os.replace(staging, target)
                break
            except OSError:
                continue  # a concurrent writer republished first; retry
        else:
            raise error(
                f"could not swap staged write into place at {target}; another "
                "process keeps republishing the same name"
            )
    except BaseException:
        _remove(staging)
        # A failed publish must not lose the previous good version: put the
        # newest displaced one back if the name ended up empty.
        if displaced and not target.exists():
            try:
                os.replace(displaced.pop(), target)
            except OSError:
                pass
        for old in displaced:
            _remove(old)
        raise
    for old in displaced:
        _remove(old)
