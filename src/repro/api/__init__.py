"""The public serving API: method registry, engine configuration, rewrite engine.

This package is the single front door to the library for serving workloads:

* :mod:`repro.api.registry` -- a decorator-based registry of query-similarity
  methods.  Downstream code registers custom methods with
  :func:`~repro.api.registry.register_method` without editing core modules.
* :class:`~repro.api.config.EngineConfig` -- one validated, serializable
  configuration object unifying the SimRank parameters with the rewrite
  front-end knobs (bid-term filtering, dedup, candidate pool, max rewrites).
* :class:`~repro.api.engine.RewriteEngine` -- the fit -> serve facade: fit a
  similarity method on a click graph once (offline), then serve cached top-k
  rewrite lists with O(1) repeated lookups (online), matching the paper's
  offline-computation / online-serving deployment story (Section 9.3).
"""

from repro.api.config import EngineConfig
from repro.api.engine import CacheInfo, Explanation, RewriteEngine
from repro.api.registry import (
    PAPER_METHODS,
    DuplicateMethodError,
    MethodSpec,
    RegistryError,
    UnknownBackendError,
    UnknownMethodError,
    available_backends,
    available_methods,
    create,
    method_spec,
    register_method,
    unregister_method,
)

__all__ = [
    "EngineConfig",
    "CacheInfo",
    "Explanation",
    "RewriteEngine",
    "PAPER_METHODS",
    "DuplicateMethodError",
    "MethodSpec",
    "RegistryError",
    "UnknownBackendError",
    "UnknownMethodError",
    "available_backends",
    "available_methods",
    "create",
    "method_spec",
    "register_method",
    "unregister_method",
]
