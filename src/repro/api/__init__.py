"""The public serving API: method registry, engine configuration, rewrite engine.

This package is the single front door to the library for serving workloads:

* :mod:`repro.api.registry` -- a decorator-based registry of query-similarity
  methods.  Downstream code registers custom methods with
  :func:`~repro.api.registry.register_method` without editing core modules.
* :class:`~repro.api.config.EngineConfig` -- one validated, serializable
  configuration object unifying the SimRank parameters with the rewrite
  front-end knobs (bid-term filtering, dedup, candidate pool, max rewrites).
* :class:`~repro.api.engine.RewriteEngine` -- the fit -> serve facade: fit a
  similarity method on a click graph once (offline), then serve cached top-k
  rewrite lists with O(1) repeated lookups (online), matching the paper's
  offline-computation / online-serving deployment story (Section 9.3).

Choosing a backend
------------------

The SimRank family ships three interchangeable backends, selected with
``EngineConfig(backend=...)`` (or ``--backend`` on the experiments CLI); all
three compute the same fixpoint and agree within 1e-6 -- the standing
``tests/equivalence/`` harness asserts exactly that for every mode.

``reference``
    The node-pair implementations that follow the paper's equations
    literally.  Slowest (Python double loops), but they expose per-iteration
    traces; use them for tiny graphs, debugging and paper-table
    reproduction.
``matrix``
    One dense numpy fixpoint over the whole node set.  The right choice for
    a single well-connected component of up to a few thousand nodes -- the
    dense products are BLAS-fast but cost O(n^2) memory regardless of
    structure.
``sharded``
    Decomposes the click graph into connected components and runs the dense
    engine per component, stitching the per-component scores (cross-component
    pairs provably score zero).  The default choice for realistic click
    graphs, which are highly disconnected: memory and time scale with the
    largest component, not the whole graph, and independent components can be
    fitted on a thread pool (``ShardedSimrank(n_jobs=...)``).
    ``benchmarks/bench_sharded_backend.py`` gates the speedup (>= 2x over
    ``matrix`` on a 10-component graph).
"""

from repro.api.config import EngineConfig
from repro.api.engine import CacheInfo, Explanation, RewriteEngine
from repro.api.registry import (
    PAPER_METHODS,
    SIMRANK_BACKENDS,
    DuplicateMethodError,
    MethodSpec,
    RegistryError,
    UnknownBackendError,
    UnknownMethodError,
    available_backends,
    available_methods,
    create,
    method_spec,
    register_method,
    unregister_method,
)

__all__ = [
    "EngineConfig",
    "CacheInfo",
    "Explanation",
    "RewriteEngine",
    "PAPER_METHODS",
    "SIMRANK_BACKENDS",
    "DuplicateMethodError",
    "MethodSpec",
    "RegistryError",
    "UnknownBackendError",
    "UnknownMethodError",
    "available_backends",
    "available_methods",
    "create",
    "method_spec",
    "register_method",
    "unregister_method",
]
