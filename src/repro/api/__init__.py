"""The public serving API: method registry, engine configuration, rewrite engine.

This package is the single front door to the library for serving workloads:

* :mod:`repro.api.registry` -- a decorator-based registry of query-similarity
  methods.  Downstream code registers custom methods with
  :func:`~repro.api.registry.register_method` without editing core modules.
* :class:`~repro.api.config.EngineConfig` -- one validated, serializable
  configuration object unifying the SimRank parameters with the rewrite
  front-end knobs (bid-term filtering, dedup, candidate pool, max rewrites).
* :class:`~repro.api.engine.RewriteEngine` -- the fit -> serve facade: fit a
  similarity method on a click graph once (offline), then serve cached top-k
  rewrite lists with O(1) repeated lookups (online), matching the paper's
  offline-computation / online-serving deployment story (Section 9.3).

Choosing a backend
------------------

The SimRank family ships five interchangeable backends, selected with
``EngineConfig(backend=...)`` (or ``--backend`` on the experiments CLI); all
compute the same fixpoint and agree within 1e-6 -- the standing
``tests/equivalence/`` harness asserts exactly that for every mode (the
``sparse`` backend with truncation disabled, its default).  When in doubt,
pick ``auto`` and let the planner decide from the graph's shape.

``reference``
    The node-pair implementations that follow the paper's equations
    literally.  Slowest (Python double loops), but they expose per-iteration
    traces; use them for tiny graphs, debugging and paper-table
    reproduction.
``matrix``
    One dense numpy fixpoint over the whole node set.  The right choice for
    a single well-connected component of up to a few thousand nodes -- the
    dense products are BLAS-fast but cost O(n^2) memory regardless of
    structure.
``sharded``
    Decomposes the click graph into connected components and runs a
    whole-graph engine per component, stitching the per-component score
    matrices block-diagonally (cross-component pairs provably score zero).
    The right choice for realistic click graphs, which are highly
    disconnected: memory and time scale with the largest component, not the
    whole graph, and independent components can be fitted on a thread pool
    (``ShardedSimrank(n_jobs=...)``).  ``ShardedSimrank(inner_backend=
    "sparse")`` composes sharding with the sparse engine below.
    ``benchmarks/bench_sharded_backend.py`` gates the speedup (>= 2x over
    ``matrix`` on a 10-component graph).
``sparse``
    The same Jacobi iteration on ``scipy.sparse`` CSR matrices, so each
    iteration costs work proportional to the *nonzeros* of the score
    matrices instead of n^2 -- the right choice for huge sparse click graphs
    even when they are well connected.  Two pruning knobs on
    ``SimrankConfig`` bound fill-in: ``prune_threshold`` drops entries below
    an epsilon after every iteration and ``prune_top_k`` caps the retained
    entries per row.  Both default to off, which makes the computation exact
    (the same fixpoint as ``matrix`` to machine precision); with pruning on, scores
    are approximate -- a dropped entry perturbs downstream scores by at most
    ``prune_threshold * c / (1 - c)`` per endpoint -- but top-k *serving* is
    unaffected as long as ``prune_top_k`` comfortably exceeds the rewrite
    depth.  ``benchmarks/bench_sparse_backend.py`` gates the speedup (>= 3x
    over ``matrix`` on a 1500-node sparse scenario, measured ~14x) and
    records the ``BENCH_sparse_backend.json`` perf trajectory.
``auto``
    A planner (:mod:`repro.core.planner`) that inspects the click graph at
    fit time -- component-size histogram, bipartite density, node count --
    and runs whichever of the above the shape favours: one dense or sparse
    fit for (near-)single-component graphs, or the sharded engine with a
    dense/sparse inner engine chosen *per shard*.  The decision is recorded
    in an inspectable :class:`~repro.core.planner.PlanReport`
    (``engine.plan_report``, persisted in snapshot manifests, printed by
    ``simrankpp-experiments --backend auto``).  Scores are identical to the
    fixed backend the plan names.  ``benchmarks/bench_backend_auto.py``
    gates auto within ~10% of the best fixed backend per scenario.

Parallel fitting
----------------

The sharded and auto backends fit independent components on a worker pool:
``EngineConfig(n_jobs=N)`` (or ``ShardedSimrank(n_jobs=...)``) sets the
worker count, with ``-1`` meaning one worker per *available* CPU --
affinity-aware via :func:`repro.core.parallel.available_cpu_count`, so
cgroup-restricted containers are not oversubscribed.  ``executor=`` picks
the pool flavour: ``"thread"`` (cheap, GIL-bound outside numpy),
``"process"`` (true multi-core: shards are batched into cost-balanced
picklable payloads, warm-start seeds shipped per shard) or ``"auto"`` (the
default -- processes only when the estimated work amortises the fork/pickle
overhead).  ``benchmarks/bench_backend_auto.py`` gates ``n_jobs=4`` process
fitting at >= 2.5x a single-core fit on a many-component graph.

All backends serve scores through the array-backed
:class:`~repro.core.scores_array.ArraySimilarityScores` store, which wraps
the final score matrix directly instead of materializing millions of dict
entries.

Snapshots and the serving cache
-------------------------------

The fit -> serve split survives process restarts: ``engine.save(path)``
writes a versioned snapshot (the CSR score store via
``scipy.sparse.save_npz`` plus a JSON manifest with the ``EngineConfig``,
bid terms and fit metadata), and ``RewriteEngine.load(path)`` revives a
servable engine *without refitting* -- identical rewrite lists, for every
backend (the dict-backed ``reference`` store converts through
``SimilarityScores.to_array`` / ``from_array``).
:class:`~repro.api.snapshot.EngineSnapshotStore` manages named snapshots
under one directory, the eval harness and ``simrankpp-experiments``
(``--save-engine`` / ``--load-engine``) wire it end to end, and
``benchmarks/bench_engine_snapshot.py`` gates snapshot loading at >= 20x
faster than refitting.

Incremental refresh
-------------------

Production click graphs change continuously; a full refit per change is the
cold path.  ``engine.refresh(delta)`` takes a
:class:`~repro.graph.delta.ClickGraphDelta` (captured with
``ClickGraphDelta.between(old, new)`` or recorded with
:class:`~repro.graph.delta.DeltaBuilder`), applies it to the bound graph,
refits warm-started from the current scores -- the sharded backend refits
*only* the components an edge change touched and reuses the rest verbatim
-- and invalidates only the cached rewrite lists whose results could have
changed.  Snapshots double as warm-start seeds:
:func:`~repro.api.snapshot.warm_start_from_snapshot` (or
``RewriteEngine.load(path).fit(graph, warm_start=True)``) refits a revived
engine on a moved graph in a handful of iterations.
``benchmarks/bench_engine_refresh.py`` gates refresh at >= 5x faster than
a cold refit on a delta touching <= 10% of components.

Online serving no longer requires an unbounded cache:
``EngineConfig(cache_size=N)`` bounds the serving cache to ``N`` rewrite
lists with least-recently-used eviction (``None``, the default, keeps every
entry -- the paper's full-precompute mode).  Evictions are counted in
``CacheInfo.evictions``; an evicted query costs one recompute on its next
sighting and never a different result.

Serving stores and the engine-source resolver
---------------------------------------------

Serving does not even require the score matrix resident:
``engine.export_store(path)`` materializes the per-query rewrite lists
into a single-file SQLite serving store (ranked inside the database by a
window-function query under the exact in-memory tie-break, then filtered
by the real Section 9.3 pipeline -- :mod:`repro.store`), and
``RewriteEngine.from_store(path)`` revives a serving-only engine that
answers byte-equal rewrite lists via indexed point lookups with O(cache)
resident memory.  :func:`repro.api.sources.resolve_engine_source` is the
one front door over every engine source -- serving store, snapshot
directory (with crash-safe sibling fallback) or fresh fit -- used by the
serving CLI and the eval harness alike.
``benchmarks/bench_sql_serving.py`` gates store-backed serving at
byte-equal profiles, p99 lookup latency within 5x of in-memory and
measurably lower peak RSS than full-snapshot serving.
"""

from repro.api.config import ConfigError, EngineConfig
from repro.api.engine import CacheInfo, Explanation, RefreshInfo, RewriteEngine
from repro.api.registry import (
    PAPER_METHODS,
    SIMRANK_BACKENDS,
    DuplicateMethodError,
    MethodSpec,
    RegistryError,
    UnknownBackendError,
    UnknownMethodError,
    available_backends,
    available_methods,
    create,
    method_spec,
    register_method,
    unregister_method,
)
from repro.api.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    EngineSnapshotStore,
    SnapshotError,
    read_snapshot,
    warm_start_from_snapshot,
    write_snapshot,
)
from repro.api.sources import ResolvedEngine, resolve_engine_source

__all__ = [
    "ResolvedEngine",
    "resolve_engine_source",
    "ConfigError",
    "EngineConfig",
    "CacheInfo",
    "Explanation",
    "RefreshInfo",
    "RewriteEngine",
    "SNAPSHOT_FORMAT_VERSION",
    "EngineSnapshotStore",
    "SnapshotError",
    "read_snapshot",
    "warm_start_from_snapshot",
    "write_snapshot",
    "PAPER_METHODS",
    "SIMRANK_BACKENDS",
    "DuplicateMethodError",
    "MethodSpec",
    "RegistryError",
    "UnknownBackendError",
    "UnknownMethodError",
    "available_backends",
    "available_methods",
    "create",
    "method_spec",
    "register_method",
    "unregister_method",
]
