"""One front door over every way to obtain a servable engine.

Three construction paths grew up independently -- snapshot revival (with
sibling fallback) in :mod:`repro.serving.resilience`, synthetic fit in
``serving/app.py``, snapshot-or-refit in the eval harness -- each with its
own error handling and none aware of serving stores.
:func:`resolve_engine_source` is the single resolver they all now
delegate to: give it exactly one source (a serving store, a snapshot
directory, or a click graph to fit) and get back a
:class:`ResolvedEngine` that says what was built and where it actually
came from.

The resolver owns the crash-safe startup policy: a corrupt snapshot falls
back to the newest *loadable* sibling snapshot (``kind ==
"snapshot-sibling"``) rather than refusing to serve, warning once per
skipped candidate.  Store and fit sources fail loudly -- there is nothing
safe to fall back to.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Union

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.api.snapshot import MANIFEST_FILENAME, SnapshotError
from repro.graph.click_graph import ClickGraph

if TYPE_CHECKING:
    from repro.store.base import ServingStore

__all__ = ["ResolvedEngine", "resolve_engine_source"]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class ResolvedEngine:
    """What :func:`resolve_engine_source` built and where it came from.

    ``kind`` is ``"store"`` / ``"snapshot"`` / ``"snapshot-sibling"`` /
    ``"fitted"``; ``origin`` is the store file or snapshot directory that
    actually backs the engine (``None`` for a fresh fit).  ``degraded`` is
    True exactly when a sibling snapshot was served in place of the
    requested one -- the signal the serving tier surfaces at startup.
    """

    engine: RewriteEngine
    kind: str
    origin: Optional[Path] = None

    @property
    def degraded(self) -> bool:
        return self.kind == "snapshot-sibling"


def _sibling_snapshots(failed: Path) -> List[Path]:
    """Completed sibling snapshot dirs of ``failed``, newest manifest first.

    Mirrors ``EngineSnapshotStore.list_snapshots``: dotted directories are
    in-progress staging areas, and a directory without a manifest never
    finished its rename-publish.  Manifest mtime orders candidates because
    the manifest is the last file staged before publish.
    """
    parent = failed.parent
    if not parent.is_dir():
        return []
    candidates = [
        entry
        for entry in parent.iterdir()
        if entry.is_dir()
        and not entry.name.startswith(".")
        and entry != failed
        and (entry / MANIFEST_FILENAME).is_file()
    ]
    candidates.sort(
        key=lambda entry: (entry / MANIFEST_FILENAME).stat().st_mtime, reverse=True
    )
    return candidates


def _resolve_snapshot(
    requested: Path,
    fallback_siblings: bool,
    warn: Optional[Callable[[str], None]],
) -> ResolvedEngine:
    try:
        return ResolvedEngine(
            engine=RewriteEngine.load(requested), kind="snapshot", origin=requested
        )
    except SnapshotError as original:
        if not fallback_siblings:
            raise
        if warn is not None:
            warn(f"snapshot {requested} failed to load: {original}")
        for candidate in _sibling_snapshots(requested):
            try:
                engine = RewriteEngine.load(candidate)
            except SnapshotError as error:
                if warn is not None:
                    warn(f"fallback snapshot {candidate} also failed: {error}")
                continue
            if warn is not None:
                warn(f"serving fallback snapshot {candidate}")
            return ResolvedEngine(
                engine=engine, kind="snapshot-sibling", origin=candidate
            )
        # No sibling loads either: surface what was wrong with the snapshot
        # the operator actually asked for, not the last candidate tried.
        raise original


def _resolve_store(source: Union[PathLike, "ServingStore"]) -> ResolvedEngine:
    engine = RewriteEngine.from_store(source)
    store = engine.serving_store
    origin = getattr(store, "path", None)
    return ResolvedEngine(
        engine=engine,
        kind="store",
        origin=Path(origin) if origin is not None else None,
    )


def resolve_engine_source(
    *,
    store: Optional[Union[PathLike, "ServingStore"]] = None,
    snapshot: Optional[PathLike] = None,
    graph: Optional[ClickGraph] = None,
    config: Optional[EngineConfig] = None,
    bid_terms: Optional[Iterable[str]] = None,
    fallback_siblings: bool = True,
    warn: Optional[Callable[[str], None]] = None,
) -> ResolvedEngine:
    """Build a servable engine from exactly one source.

    Parameters
    ----------
    store:
        A serving-store file path or an open
        :class:`~repro.store.base.ServingStore`: yields a serving-only
        engine (``kind == "store"``).  Store problems raise
        :class:`~repro.store.base.StoreError` -- no fallback exists.
    snapshot:
        A snapshot directory: yields a revived engine (``kind ==
        "snapshot"``).  When it is corrupt and ``fallback_siblings`` is
        True (the default), the newest loadable sibling snapshot is served
        instead (``kind == "snapshot-sibling"``, ``degraded`` True),
        calling ``warn`` once per skipped candidate; with no loadable
        sibling the *original* :class:`SnapshotError` propagates.
    graph:
        A click graph: fits a fresh engine on it with ``config`` /
        ``bid_terms`` (``kind == "fitted"``, ``origin`` None).
    config, bid_terms:
        Only meaningful with ``graph``; snapshot and store sources carry
        their own recorded configuration.

    Returns a :class:`ResolvedEngine`; raises ``ValueError`` unless
    exactly one of ``store`` / ``snapshot`` / ``graph`` is given.
    """
    sources = [name for name, value in
               (("store", store), ("snapshot", snapshot), ("graph", graph))
               if value is not None]
    if len(sources) != 1:
        raise ValueError(
            "resolve_engine_source needs exactly one of store=, snapshot= "
            f"or graph=; got {sources or 'none'}"
        )
    if (config is not None or bid_terms is not None) and graph is None:
        raise ValueError(
            "config/bid_terms only apply to graph= sources; snapshot and "
            "store sources carry their own recorded configuration"
        )
    if store is not None:
        return _resolve_store(store)
    if snapshot is not None:
        return _resolve_snapshot(Path(snapshot), fallback_siblings, warn)
    engine = RewriteEngine.from_graph(graph, config=config, bid_terms=bid_terms).fit()
    return ResolvedEngine(engine=engine, kind="fitted", origin=None)
