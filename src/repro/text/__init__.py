"""Lightweight text utilities: tokenization, normalization and stemming.

The sponsored-search front-end deduplicates rewrites via stemming
(Section 9.3: "we then use stemming to filter out duplicate rewrites"), and
the simulated editorial judge compares query terms.  Both use the utilities
here; the Porter stemmer is implemented from scratch so the library has no
external NLP dependency.
"""

from repro.text.normalize import normalize_query, query_signature, tokenize
from repro.text.porter import PorterStemmer, stem

__all__ = [
    "normalize_query",
    "query_signature",
    "tokenize",
    "PorterStemmer",
    "stem",
]
