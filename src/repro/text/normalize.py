"""Query tokenization and normalization.

``query_signature`` is the equivalence key used by the rewriting front-end:
two queries with the same signature (same multiset of stemmed terms) are
treated as duplicates during rewrite filtering (Section 9.3).
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.text.porter import stem

__all__ = ["tokenize", "normalize_query", "query_signature"]

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> List[str]:
    """Lowercase alphanumeric tokens of a query string."""
    return _TOKEN_PATTERN.findall(str(text).lower())


def normalize_query(text: str) -> str:
    """Canonical form of a query: lowercased tokens joined by single spaces."""
    return " ".join(tokenize(text))


def query_signature(text: str) -> Tuple[str, ...]:
    """Order-insensitive stemmed signature of a query.

    "digital cameras" and "camera digital" share a signature, so one of them
    is dropped by the duplicate filter.
    """
    return tuple(sorted(stem(token) for token in tokenize(text)))
