"""Porter stemming algorithm (Porter, 1980), implemented from scratch.

The classic five-step suffix-stripping stemmer.  It is used to decide whether
two query strings are trivial variants of each other ("camera" vs "cameras",
"running shoe" vs "running shoes") when deduplicating rewrites.
"""

from __future__ import annotations

__all__ = ["PorterStemmer", "stem"]

_VOWELS = set("aeiou")


class PorterStemmer:
    """Stateless Porter stemmer; use :meth:`stem` on lowercase words."""

    # ------------------------------------------------------------ public API

    def stem(self, word: str) -> str:
        """Return the Porter stem of a single lowercase word."""
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        return self._step5b(word)

    # ------------------------------------------------------------ primitives

    def _is_consonant(self, word: str, index: int) -> bool:
        char = word[index]
        if char in _VOWELS:
            return False
        if char == "y":
            if index == 0:
                return True
            return not self._is_consonant(word, index - 1)
        return True

    def _measure(self, stem_part: str) -> int:
        """The Porter measure m: number of VC sequences in the stem."""
        forms = []
        for index in range(len(stem_part)):
            forms.append("c" if self._is_consonant(stem_part, index) else "v")
        collapsed = "".join(forms)
        # Collapse runs, then count "vc" transitions.
        compact = []
        for symbol in collapsed:
            if not compact or compact[-1] != symbol:
                compact.append(symbol)
        return "".join(compact).count("vc")

    def _contains_vowel(self, stem_part: str) -> bool:
        return any(not self._is_consonant(stem_part, index) for index in range(len(stem_part)))

    def _ends_double_consonant(self, word: str) -> bool:
        return (
            len(word) >= 2
            and word[-1] == word[-2]
            and self._is_consonant(word, len(word) - 1)
        )

    def _ends_cvc(self, word: str) -> bool:
        if len(word) < 3:
            return False
        last = len(word) - 1
        return (
            self._is_consonant(word, last)
            and not self._is_consonant(word, last - 1)
            and self._is_consonant(word, last - 2)
            and word[last] not in "wxy"
        )

    def _replace_suffix(self, word: str, suffix: str, replacement: str, min_measure: int) -> str:
        """Replace ``suffix`` by ``replacement`` when the stem measure allows it."""
        if not word.endswith(suffix):
            return word
        stem_part = word[: len(word) - len(suffix)]
        if self._measure(stem_part) > min_measure:
            return stem_part + replacement
        return word

    # ----------------------------------------------------------------- steps

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem_part = word[:-3]
            if self._measure(stem_part) > 0:
                return word[:-1]
            return word
        applied = False
        if word.endswith("ed"):
            stem_part = word[:-2]
            if self._contains_vowel(stem_part):
                word = stem_part
                applied = True
        elif word.endswith("ing"):
            stem_part = word[:-3]
            if self._contains_vowel(stem_part):
                word = stem_part
                applied = True
        if applied:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) and not word.endswith(("l", "s", "z")):
                return word[:-1]
            if self._measure(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_SUFFIXES = (
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
        ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
        ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
        ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
        ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
    )

    def _step2(self, word: str) -> str:
        for suffix, replacement in self._STEP2_SUFFIXES:
            if word.endswith(suffix):
                return self._replace_suffix(word, suffix, replacement, min_measure=0)
        return word

    _STEP3_SUFFIXES = (
        ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
        ("ical", "ic"), ("ful", ""), ("ness", ""),
    )

    def _step3(self, word: str) -> str:
        for suffix, replacement in self._STEP3_SUFFIXES:
            if word.endswith(suffix):
                return self._replace_suffix(word, suffix, replacement, min_measure=0)
        return word

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    def _step4(self, word: str) -> str:
        if word.endswith("ion") and len(word) > 3 and word[-4] in "st":
            stem_part = word[:-3]
            if self._measure(stem_part) > 1:
                return stem_part
            return word
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem_part = word[: len(word) - len(suffix)]
                if self._measure(stem_part) > 1:
                    return stem_part
                return word
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem_part = word[:-1]
            measure = self._measure(stem_part)
            if measure > 1:
                return stem_part
            if measure == 1 and not self._ends_cvc(stem_part):
                return stem_part
        return word

    def _step5b(self, word: str) -> str:
        if self._measure(word) > 1 and self._ends_double_consonant(word) and word.endswith("l"):
            return word[:-1]
        return word


_DEFAULT_STEMMER = PorterStemmer()


def stem(word: str) -> str:
    """Porter stem of a word (lowercased before stemming)."""
    return _DEFAULT_STEMMER.stem(word.lower())
