"""End-to-end evaluation harness (paper Sections 9.2-9.4).

:class:`ExperimentHarness` reproduces the paper's experimental pipeline on a
synthetic workload:

1. take the workload's click graph, keep the largest connected component and
   decompose it into a handful of subgraphs with the ACL local partitioner
   (Table 5 dataset);
2. sample the evaluation queries from the simulated traffic stream and keep
   those present in the dataset (the 1200 -> 120 reduction of Section 9.2);
3. fit every similarity method on the dataset, generate up to five filtered
   rewrites per evaluation query (stemming dedup + bid-term filter);
4. grade each query-rewrite pair with the simulated editorial judge and
   compute query coverage (Figure 8), 11-point precision/recall and P@X for
   both relevance thresholds (Figures 9/10) and the rewriting-depth
   distribution (Figure 11);
5. run the desirability edge-removal experiment (Figure 12).

Every step resolves similarity methods through the registry, so the
``backend`` knob accepts any registered SimRank backend (``matrix``,
``reference``, ``sharded``, ``sparse``, ``auto``); the ``sparse`` backend's
pruning is configured on the :class:`~repro.core.config.SimrankConfig` passed
in (``prune_threshold`` / ``prune_top_k``).  With ``backend="auto"`` the
planner's decision per method is collected in
``EvaluationResult.plan_reports`` (and printed by the CLI); ``n_jobs`` /
``executor`` control the parallel fitting tier of the sharded and auto
backends.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple, Union

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.api.registry import PAPER_METHODS, create
from repro.api.snapshot import EngineSnapshotStore, SnapshotError, graph_fingerprint
from repro.api.sources import resolve_engine_source
from repro.core.config import SimrankConfig
from repro.core.planner import PlanReport
from repro.core.rewriter import RewriteList
from repro.eval.coverage import coverage_percentage, depth_distribution
from repro.eval.desirability import DesirabilityResult, run_desirability_experiment
from repro.eval.editorial import EditorialJudge
from repro.eval.metrics import (
    PrecisionRecallCurve,
    interpolated_precision_recall,
    precision_at_k,
)
from repro.graph.click_graph import ClickGraph
from repro.graph.components import connected_components, largest_component
from repro.graph.sampling import intersect_with_graph, sample_queries_by_traffic
from repro.graph.statistics import DatasetStatistics, dataset_statistics
from repro.partition.extraction import extract_subgraphs
from repro.synth.generator import SyntheticWorkload
from repro.synth.yahoo_like import yahoo_like_workload

__all__ = ["MethodEvaluation", "EvaluationResult", "ExperimentHarness"]

Node = Hashable

#: Relevance thresholds used by the paper: grades {1, 2} positive (Figure 9)
#: and grade {1} only positive (Figure 10).
RELEVANCE_THRESHOLDS: Tuple[int, ...] = (2, 1)


@dataclass
class MethodEvaluation:
    """Everything measured for one similarity method."""

    method_name: str
    rewrite_lists: Dict[Node, RewriteList] = field(default_factory=dict)
    grades: Dict[Tuple[Node, Node], int] = field(default_factory=dict)
    coverage: float = 0.0
    depth: Dict[str, float] = field(default_factory=dict)
    #: threshold -> {k: precision at k}, averaged over covered queries.
    precision_at_x: Dict[int, Dict[int, float]] = field(default_factory=dict)
    #: threshold -> 11-point interpolated precision-recall curve.
    pr_curves: Dict[int, PrecisionRecallCurve] = field(default_factory=dict)

    def mean_grade(self) -> float:
        """Average editorial grade of all proposed rewrites (lower is better)."""
        if not self.grades:
            return 0.0
        return sum(self.grades.values()) / len(self.grades)


@dataclass
class EvaluationResult:
    """Output of one full harness run."""

    workload: SyntheticWorkload
    subgraphs: List[ClickGraph]
    dataset: ClickGraph
    evaluation_queries: List[Node]
    methods: Dict[str, MethodEvaluation]
    desirability: Dict[str, DesirabilityResult] = field(default_factory=dict)
    #: method name -> the backend="auto" planner's decision for its fit
    #: (empty for fixed backends and snapshot loads without a recorded plan).
    plan_reports: Dict[str, "PlanReport"] = field(default_factory=dict)

    def dataset_statistics(self) -> List[DatasetStatistics]:
        """Per-subgraph statistics (the rows of Table 5)."""
        return [dataset_statistics(subgraph) for subgraph in self.subgraphs]

    def coverage_by_method(self) -> Dict[str, float]:
        """Figure 8 series: coverage percentage per method."""
        return {name: evaluation.coverage for name, evaluation in self.methods.items()}

    def depth_by_method(self) -> Dict[str, Dict[str, float]]:
        """Figure 11 series: depth distribution per method."""
        return {name: evaluation.depth for name, evaluation in self.methods.items()}

    def precision_at_x_by_method(self, threshold: int = 2) -> Dict[str, Dict[int, float]]:
        """Figure 9/10 (bottom) series: P@1..5 per method."""
        return {
            name: evaluation.precision_at_x.get(threshold, {})
            for name, evaluation in self.methods.items()
        }

    def pr_curve_by_method(self, threshold: int = 2) -> Dict[str, PrecisionRecallCurve]:
        """Figure 9/10 (top) series: interpolated PR curve per method."""
        return {
            name: evaluation.pr_curves.get(threshold, PrecisionRecallCurve())
            for name, evaluation in self.methods.items()
        }

    def desirability_by_method(self) -> Dict[str, float]:
        """Figure 12 series: correct-ordering percentage per method."""
        return {name: result.percentage for name, result in self.desirability.items()}


class ExperimentHarness:
    """Runs the paper's evaluation pipeline over a synthetic workload."""

    def __init__(
        self,
        workload: Optional[SyntheticWorkload] = None,
        workload_size: str = "small",
        config: Optional[SimrankConfig] = None,
        methods: Sequence[str] = PAPER_METHODS,
        backend: str = "matrix",
        n_jobs: int = 1,
        executor: str = "auto",
        num_subgraphs: int = 5,
        use_partitioning: bool = True,
        traffic_sample_size: int = 1200,
        max_evaluation_queries: int = 120,
        max_rewrites: int = 5,
        candidate_pool: int = 100,
        desirability_cases: int = 50,
        desirability_radius: int = 6,
        seed: int = 29,
        save_engines_to: Optional[Union[str, Path]] = None,
        load_engines_from: Optional[Union[str, Path]] = None,
        refresh_engines_from: Optional[Union[str, Path]] = None,
    ) -> None:
        self.workload = workload or yahoo_like_workload(workload_size)
        # A small zero-evidence floor keeps the evidence-carrying variants
        # able to rank pairs with no (remaining) common ad; see SimrankConfig
        # and EXPERIMENTS.md for why the harness deviates from the strict
        # Equation 7.3 here.
        self.config = config or SimrankConfig(iterations=7, zero_evidence_floor=0.1)
        self.methods = list(methods)
        self.backend = backend
        self.n_jobs = n_jobs
        self.executor = executor
        self.num_subgraphs = num_subgraphs
        self.use_partitioning = use_partitioning
        self.traffic_sample_size = traffic_sample_size
        self.max_evaluation_queries = max_evaluation_queries
        self.max_rewrites = max_rewrites
        self.candidate_pool = candidate_pool
        self.desirability_cases = desirability_cases
        self.desirability_radius = desirability_radius
        self.seed = seed
        #: Offline -> online split: when ``save_engines_to`` is set every
        #: fitted engine is snapshotted there (named ``<method>-<backend>``),
        #: and when ``load_engines_from`` is set existing snapshots are
        #: served from instead of refitting.  Snapshots are keyed by method
        #: and backend only -- the caller owns invalidation (delete the
        #: directory when the workload, config or seed changes).
        self.save_engines_to = save_engines_to
        self.load_engines_from = load_engines_from
        #: Warm-start fallback: snapshots under this directory whose config
        #: and bid terms match -- but whose *graph* need not -- seed a
        #: warm-started refit on the current dataset instead of a cold fit.
        #: This is the incremental path when the workload moved between
        #: runs; ``load_engines_from`` (exact match, no refit) wins when
        #: both are set and the snapshot still fits.
        self.refresh_engines_from = refresh_engines_from

    # ------------------------------------------------------------------- run

    def run(self, run_desirability: bool = True) -> EvaluationResult:
        """Execute the full pipeline and return all measurements."""
        rng = random.Random(self.seed)
        subgraphs = self.build_subgraphs()
        dataset = self._combine(subgraphs)
        evaluation_queries = self.select_evaluation_queries(dataset, rng)
        judge = EditorialJudge(self.workload)

        rewrites_per_method: Dict[str, Dict[Node, RewriteList]] = {}
        plan_reports: Dict[str, "PlanReport"] = {}
        for method_name in self.methods:
            engine = self._fitted_engine(method_name, dataset)
            plan = engine.plan_report
            if plan is not None:
                plan_reports[method_name] = plan
            rewrites_per_method[method_name] = {
                query: rewrite_list
                for query, rewrite_list in zip(
                    evaluation_queries, engine.rewrite_batch(evaluation_queries)
                )
            }

        relevant_pool = self._pooled_relevant(rewrites_per_method, judge)
        evaluations = {
            method_name: self._evaluate_method(
                method_name, rewrites, judge, relevant_pool
            )
            for method_name, rewrites in rewrites_per_method.items()
        }

        desirability: Dict[str, DesirabilityResult] = {}
        if run_desirability and self.desirability_cases > 0:
            desirability = self.run_desirability(dataset, rng)

        return EvaluationResult(
            workload=self.workload,
            subgraphs=subgraphs,
            dataset=dataset,
            evaluation_queries=evaluation_queries,
            methods=evaluations,
            desirability=desirability,
            plan_reports=plan_reports,
        )

    # ----------------------------------------------------------- preparation

    def build_subgraphs(self) -> List[ClickGraph]:
        """Decompose the workload's click graph into the evaluation dataset."""
        graph = self.workload.click_graph
        if not self.use_partitioning:
            components = connected_components(graph)[: self.num_subgraphs]
            return [graph.subgraph(queries=q, ads=a) for q, a in components]
        giant = largest_component(graph)
        extraction = extract_subgraphs(
            giant,
            num_subgraphs=self.num_subgraphs,
            rng=random.Random(self.seed),
        )
        if not extraction.subgraphs:
            return [giant]
        return extraction.subgraphs

    def select_evaluation_queries(
        self, dataset: ClickGraph, rng: random.Random
    ) -> List[Node]:
        """Popularity-weighted traffic sample intersected with the dataset."""
        sample = sample_queries_by_traffic(
            self.workload.traffic, self.traffic_sample_size, rng=rng
        )
        in_graph = intersect_with_graph(sample, dataset)
        return in_graph[: self.max_evaluation_queries]

    def run_desirability(
        self, dataset: ClickGraph, rng: random.Random
    ) -> Dict[str, DesirabilityResult]:
        """The Figure 12 experiment for the SimRank variants (Pearson excluded)."""
        simrank_methods = [name for name in self.methods if name != "pearson"]
        factories = {
            name: (lambda name=name: create(name, config=self.config, backend=self.backend))
            for name in simrank_methods
        }
        return run_desirability_experiment(
            dataset,
            factories,
            num_cases=self.desirability_cases,
            rng=rng,
            source=self.config.weight_source,
            neighborhood_radius=self.desirability_radius,
        )

    # ------------------------------------------------------------ evaluation

    def _fitted_engine(self, method_name: str, dataset: ClickGraph) -> RewriteEngine:
        """A servable engine for one method: loaded, warm-started, or fitted.

        With ``load_engines_from`` set and a ``<method>-<backend>`` snapshot
        present, the engine is revived without refitting -- but only when the
        snapshot's persisted configuration and bid terms match what this run
        would fit with; a mismatched snapshot (say, a different prune
        threshold) is ignored rather than silently serving stale knobs.

        With ``refresh_engines_from`` set, a snapshot whose config and bid
        terms match but whose recorded graph differs from ``dataset`` is used
        as a *warm-start seed*: the engine is revived and refit on
        ``dataset`` with the snapshot's scores seeding the fixpoint (far
        fewer iterations on a mildly moved workload than a cold fit).

        Otherwise the method is fitted cold on ``dataset``.  In every path
        the resulting engine is snapshotted when ``save_engines_to`` is set.
        """
        name = f"{method_name}-{self.backend}"
        if self.load_engines_from is not None:
            store = EngineSnapshotStore(self.load_engines_from)
            if name in store and self._snapshot_matches(
                store, name, method_name, dataset
            ):
                try:
                    # No sibling fallback here: a sibling snapshot would be
                    # a *different* method/backend, not a stand-in.
                    return resolve_engine_source(
                        snapshot=store.path(name), fallback_siblings=False
                    ).engine
                except SnapshotError:
                    pass  # damaged snapshot: fall through to a fresh fit
        engine = self._warm_started_engine(name, method_name, dataset)
        if engine is None:
            engine = resolve_engine_source(
                graph=dataset,
                config=self._engine_config(method_name),
                bid_terms=self._bid_terms(),
            ).engine
        if self.save_engines_to is not None:
            EngineSnapshotStore(self.save_engines_to).save(name, engine)
        return engine

    def _warm_started_engine(
        self, name: str, method_name: str, dataset: ClickGraph
    ) -> Optional[RewriteEngine]:
        """Engine warm-started from ``refresh_engines_from``, or None.

        Requires tolerance-based early exit: with ``tolerance == 0`` the
        method's result is the fixed iteration count from the identity, and
        a seeded refit would silently compute a further-converged, different
        result -- the harness falls back to a cold fit there.
        """
        if self.refresh_engines_from is None or self.config.tolerance <= 0:
            return None
        store = EngineSnapshotStore(self.refresh_engines_from)
        if name not in store or not self._snapshot_matches(
            store, name, method_name, dataset, require_same_graph=False
        ):
            return None
        try:
            return store.load(name).fit(dataset, warm_start=True)
        except SnapshotError:
            return None  # damaged snapshot: cold fit instead

    def _snapshot_matches(
        self,
        store: EngineSnapshotStore,
        name: str,
        method_name: str,
        dataset: ClickGraph,
        require_same_graph: bool = True,
    ) -> bool:
        """Cheap manifest-only check that a snapshot fits this run.

        Reads only the small JSON manifest -- the score matrix is loaded
        only once the snapshot is known to match.  Besides the engine config
        and bid terms, the snapshot's recorded graph fingerprint must match
        the dataset this run would fit on, so changed dataset-shaping knobs
        (``num_subgraphs``, ``use_partitioning``, workload, seed) do not
        silently revive an engine fitted on a different graph.  The
        warm-start path passes ``require_same_graph=False``: a snapshot of a
        *different* graph state is exactly what seeds a warm refit.
        """
        try:
            manifest = store.manifest(name)
            persisted_config = EngineConfig.from_dict(manifest["engine_config"])
            bid_terms = manifest.get("bid_terms")
            persisted_bid_terms = (
                frozenset(bid_terms) if bid_terms is not None else None
            )
            fingerprint = (manifest.get("fit") or {}).get("graph")
        except (SnapshotError, KeyError, TypeError, ValueError):
            # Unreadable or wrong-shape manifest: treat as mismatched.
            return False
        return (
            persisted_config == self._engine_config(method_name)
            and persisted_bid_terms == self._bid_terms()
            and (
                not require_same_graph
                or fingerprint == graph_fingerprint(dataset)
            )
        )

    def _engine_config(self, method_name: str) -> EngineConfig:
        return EngineConfig(
            method=method_name,
            backend=self.backend,
            similarity=self.config,
            max_rewrites=self.max_rewrites,
            candidate_pool=self.candidate_pool,
            n_jobs=self.n_jobs,
            executor=self.executor,
        )

    def _bid_terms(self) -> frozenset:
        return frozenset(str(term) for term in self.workload.bid_terms)

    def _pooled_relevant(
        self,
        rewrites_per_method: Dict[str, Dict[Node, RewriteList]],
        judge: EditorialJudge,
    ) -> Dict[int, Dict[Node, Set[Node]]]:
        """Relevant rewrites per query pooled over all methods, per threshold."""
        pool: Dict[int, Dict[Node, Set[Node]]] = {t: {} for t in RELEVANCE_THRESHOLDS}
        for rewrites in rewrites_per_method.values():
            for query, rewrite_list in rewrites.items():
                for rewrite in rewrite_list.rewrites:
                    grade = judge.grade(query, rewrite.rewrite)
                    for threshold in RELEVANCE_THRESHOLDS:
                        if grade <= threshold:
                            pool[threshold].setdefault(query, set()).add(rewrite.rewrite)
        return pool

    def _evaluate_method(
        self,
        method_name: str,
        rewrites: Dict[Node, RewriteList],
        judge: EditorialJudge,
        relevant_pool: Dict[int, Dict[Node, Set[Node]]],
    ) -> MethodEvaluation:
        grades: Dict[Tuple[Node, Node], int] = {}
        for query, rewrite_list in rewrites.items():
            for rewrite in rewrite_list.rewrites:
                grades[(query, rewrite.rewrite)] = judge.grade(query, rewrite.rewrite)

        evaluation = MethodEvaluation(
            method_name=method_name,
            rewrite_lists=rewrites,
            grades=grades,
            coverage=coverage_percentage(rewrites),
            depth=depth_distribution(rewrites, max_depth=self.max_rewrites),
        )

        for threshold in RELEVANCE_THRESHOLDS:
            rankings = {
                query: [
                    grades[(query, rewrite.rewrite)] <= threshold
                    for rewrite in rewrite_list.rewrites
                ]
                for query, rewrite_list in rewrites.items()
                if rewrite_list.rewrites
            }
            totals = {
                query: len(relevant_pool[threshold].get(query, set()))
                for query in rankings
            }
            evaluation.pr_curves[threshold] = interpolated_precision_recall(rankings, totals)
            evaluation.precision_at_x[threshold] = {
                k: self._mean_precision_at_k(rankings, k)
                for k in range(1, self.max_rewrites + 1)
            }
        return evaluation

    @staticmethod
    def _mean_precision_at_k(rankings: Dict[Node, List[bool]], k: int) -> float:
        """P@k averaged over the queries the method covered."""
        if not rankings:
            return 0.0
        return sum(precision_at_k(ranking, k) for ranking in rankings.values()) / len(rankings)

    def _combine(self, subgraphs: Sequence[ClickGraph]) -> ClickGraph:
        combined = ClickGraph()
        for subgraph in subgraphs:
            for query in subgraph.queries():
                combined.add_query(query)
            for ad in subgraph.ads():
                combined.add_ad(ad)
            for query, ad, stats in subgraph.edges():
                combined.add_edge_stats(query, ad, stats)
        return combined
