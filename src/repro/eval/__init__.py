"""Evaluation of query-rewriting methods (paper Sections 9.3-9.4).

* :mod:`repro.eval.editorial` -- a simulated editorial judge that grades
  query-rewrite pairs on the paper's 1-4 scale from the synthetic workload's
  ground-truth topic model (substitute for Yahoo!'s editorial team).
* :mod:`repro.eval.metrics` -- precision/recall, 11-point interpolated
  precision-recall curves and P@X.
* :mod:`repro.eval.coverage` -- query coverage and rewriting depth.
* :mod:`repro.eval.desirability` -- the edge-removal desirability-prediction
  experiment of Section 9.3 / Figure 12.
* :mod:`repro.eval.harness` -- the end-to-end comparison harness producing
  every number behind Figures 8-12.
* :mod:`repro.eval.reporting` -- plain-text rendering of tables and series.
"""

from repro.eval.coverage import coverage_percentage, depth_distribution, depth_histogram
from repro.eval.desirability import (
    DesirabilityCase,
    DesirabilityResult,
    desirability,
    run_desirability_experiment,
)
from repro.eval.editorial import EditorialJudge, GRADE_DESCRIPTIONS
from repro.eval.harness import EvaluationResult, ExperimentHarness, MethodEvaluation
from repro.eval.metrics import (
    PrecisionRecallCurve,
    average_precision,
    interpolated_precision_recall,
    precision_at_k,
    precision_recall,
)
from repro.eval.reporting import format_series, format_table

__all__ = [
    "coverage_percentage",
    "depth_distribution",
    "depth_histogram",
    "DesirabilityCase",
    "DesirabilityResult",
    "desirability",
    "run_desirability_experiment",
    "EditorialJudge",
    "GRADE_DESCRIPTIONS",
    "EvaluationResult",
    "ExperimentHarness",
    "MethodEvaluation",
    "PrecisionRecallCurve",
    "average_precision",
    "interpolated_precision_recall",
    "precision_at_k",
    "precision_recall",
    "format_series",
    "format_table",
]
