"""Information-retrieval metrics used in the paper's evaluation.

The paper reports, per method (Section 9.4):

* precision and recall of the graded rewrites, with the rewrites of *all*
  methods pooled together as the recall denominator,
* precision at 11 standard recall levels (the classic interpolated
  precision-recall graph of Figures 9 and 10),
* precision after X = 1..5 rewrites (P@X).

A "relevant" rewrite is one whose editorial grade falls in the positive
class: grades {1, 2} for Figure 9, grade {1} only for Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence, Tuple

__all__ = [
    "precision_recall",
    "precision_at_k",
    "average_precision",
    "interpolated_precision_recall",
    "PrecisionRecallCurve",
]

Node = Hashable

#: The 11 standard recall levels of an interpolated precision-recall graph.
STANDARD_RECALL_LEVELS: Tuple[float, ...] = tuple(i / 10 for i in range(11))


def precision_recall(
    ranked_relevance: Sequence[bool], total_relevant: int
) -> Tuple[float, float]:
    """Precision and recall of a ranked rewrite list.

    ``ranked_relevance`` flags, in rank order, whether each proposed rewrite
    is relevant; ``total_relevant`` is the number of relevant rewrites
    available for the query across all methods (the pooled denominator the
    paper uses for recall).
    """
    if not ranked_relevance:
        return 0.0, 0.0
    relevant_returned = sum(ranked_relevance)
    precision = relevant_returned / len(ranked_relevance)
    recall = relevant_returned / total_relevant if total_relevant > 0 else 0.0
    return precision, recall


def precision_at_k(ranked_relevance: Sequence[bool], k: int) -> float:
    """Precision of the first ``k`` proposed rewrites (P@k).

    Queries with fewer than ``k`` rewrites are evaluated on what they have,
    matching the paper's treatment of methods whose depth is below 5.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    top = list(ranked_relevance[:k])
    if not top:
        return 0.0
    return sum(top) / len(top)


def average_precision(ranked_relevance: Sequence[bool], total_relevant: int) -> float:
    """Mean of precision values at each relevant rank (classic AP)."""
    if total_relevant <= 0:
        return 0.0
    hits = 0
    total = 0.0
    for rank, relevant in enumerate(ranked_relevance, start=1):
        if relevant:
            hits += 1
            total += hits / rank
    return total / total_relevant


@dataclass
class PrecisionRecallCurve:
    """Interpolated precision at the 11 standard recall levels."""

    recall_levels: Tuple[float, ...] = STANDARD_RECALL_LEVELS
    precisions: List[float] = field(default_factory=lambda: [0.0] * 11)

    def as_pairs(self) -> List[Tuple[float, float]]:
        return list(zip(self.recall_levels, self.precisions))

    def precision_at_recall(self, recall: float) -> float:
        """Interpolated precision at the closest standard recall level."""
        index = min(
            range(len(self.recall_levels)),
            key=lambda i: abs(self.recall_levels[i] - recall),
        )
        return self.precisions[index]

    @property
    def mean_precision(self) -> float:
        return sum(self.precisions) / len(self.precisions) if self.precisions else 0.0


def interpolated_precision_recall(
    per_query_rankings: Dict[Node, Sequence[bool]],
    per_query_total_relevant: Dict[Node, int],
) -> PrecisionRecallCurve:
    """Average interpolated precision-recall curve over a query sample.

    For each query the (precision, recall) points along its ranking are
    interpolated in the standard way (precision at recall ``r`` = maximum
    precision at any recall >= ``r``); the per-query curves are then averaged
    over all queries that have at least one relevant rewrite available.
    """
    summed = [0.0] * len(STANDARD_RECALL_LEVELS)
    counted = 0
    for query, ranking in per_query_rankings.items():
        total_relevant = per_query_total_relevant.get(query, 0)
        if total_relevant <= 0:
            continue
        counted += 1
        curve = _single_query_interpolated(ranking, total_relevant)
        for index, value in enumerate(curve):
            summed[index] += value
    if counted == 0:
        return PrecisionRecallCurve()
    return PrecisionRecallCurve(precisions=[value / counted for value in summed])


def _single_query_interpolated(
    ranking: Sequence[bool], total_relevant: int
) -> List[float]:
    """Interpolated precision of one query at the 11 standard recall levels."""
    points: List[Tuple[float, float]] = []  # (recall, precision) along the ranking
    hits = 0
    for rank, relevant in enumerate(ranking, start=1):
        if relevant:
            hits += 1
            points.append((hits / total_relevant, hits / rank))
    interpolated: List[float] = []
    for level in STANDARD_RECALL_LEVELS:
        candidates = [precision for recall, precision in points if recall >= level - 1e-12]
        interpolated.append(max(candidates) if candidates else 0.0)
    return interpolated
