"""Plain-text rendering of experiment tables and series.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Union

__all__ = ["format_table", "format_series"]

Cell = Union[str, int, float]


def _format_cell(value: Cell, precision: int = 4) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Cell]],
    columns: Sequence[str] = None,
    title: str = "",
    precision: int = 4,
) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows: List[List[str]] = [
        [_format_cell(row.get(column, ""), precision) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(rendered[i]) for rendered in rendered_rows))
        for i, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for rendered in rendered_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(rendered, widths)))
    return "\n".join(lines)


def format_series(
    series: Dict[str, Sequence[Cell]],
    x_labels: Sequence[Cell],
    title: str = "",
    x_name: str = "x",
    precision: int = 4,
) -> str:
    """Render one or more named series over a shared x-axis as a table."""
    rows = []
    for index, x_value in enumerate(x_labels):
        row: Dict[str, Cell] = {x_name: x_value}
        for name, values in series.items():
            row[name] = values[index] if index < len(values) else ""
        rows.append(row)
    return format_table(rows, columns=[x_name, *series.keys()], title=title, precision=precision)
