"""Simulated editorial evaluation of query rewrites.

The paper's rewrites were graded by professional members of Yahoo!'s
editorial team on a 1-4 scale (Table 6):

1. Precise rewrite -- matches the user's intent, preserves the core meaning.
2. Approximate rewrite -- close relationship, scope narrowed/broadened.
3. Possible rewrite -- same broad category or a complementary product.
4. Clear mismatch -- no clear relationship.

We substitute an automatic judge whose decisions come from the synthetic
workload's *ground truth* (the topic model), not from the click graph --
matching the paper's requirement that "the judgment scores are solely based
on the evaluator's knowledge, and not on the contents of the click graph":

* same topic and at least one shared (stemmed) content term -> grade 1,
* same topic with no shared term -> grade 2,
* related topics -> grade 3,
* anything else -> grade 4.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple

from repro.synth.generator import SyntheticWorkload
from repro.synth.topics import TopicRelation
from repro.text.normalize import tokenize
from repro.text.porter import stem

__all__ = ["GRADE_DESCRIPTIONS", "EditorialJudge"]

Node = Hashable

#: Table 6 of the paper.
GRADE_DESCRIPTIONS: Dict[int, str] = {
    1: "Precise Match: near-certain match",
    2: "Approximate Match: probable, but inexact match with user intent",
    3: "Marginal Match: distant, but plausible match to a related topic",
    4: "Mismatch: clear mismatch",
}


class EditorialJudge:
    """Grades query-rewrite pairs from ground truth on the paper's 1-4 scale."""

    def __init__(self, workload: SyntheticWorkload) -> None:
        self.workload = workload

    # --------------------------------------------------------------- grading

    def grade(self, query: Node, rewrite: Node) -> int:
        """Editorial grade (1 best, 4 worst) of one query-rewrite pair."""
        if query == rewrite:
            return 1
        relation = self.workload.relation_between(str(query), str(rewrite))
        if relation is TopicRelation.SAME:
            if self._share_stemmed_term(str(query), str(rewrite)):
                return 1
            return 2
        if relation is TopicRelation.RELATED:
            return 3
        return 4

    def grade_pairs(self, pairs: Iterable[Tuple[Node, Node]]) -> Dict[Tuple[Node, Node], int]:
        """Grade a batch of (query, rewrite) pairs."""
        return {(query, rewrite): self.grade(query, rewrite) for query, rewrite in pairs}

    def is_relevant(self, query: Node, rewrite: Node, threshold: int = 2) -> bool:
        """Binary relevance: grade at or below ``threshold``.

        ``threshold=2`` is the paper's primary setting (grades 1-2 are the
        positive class, Figure 9); ``threshold=1`` is the strict setting of
        Figure 10.
        """
        return self.grade(query, rewrite) <= threshold

    # ------------------------------------------------------------- internals

    @staticmethod
    def _share_stemmed_term(query: str, rewrite: str) -> bool:
        query_stems = {stem(token) for token in tokenize(query)}
        rewrite_stems = {stem(token) for token in tokenize(rewrite)}
        return bool(query_stems & rewrite_stems)


def grade_summary(grades: Dict[Tuple[Node, Node], int]) -> List[Tuple[int, int]]:
    """Histogram of grades: list of (grade, count) sorted by grade."""
    histogram: Dict[int, int] = {1: 0, 2: 0, 3: 0, 4: 0}
    for grade in grades.values():
        histogram[grade] = histogram.get(grade, 0) + 1
    return sorted(histogram.items())
