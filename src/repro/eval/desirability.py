"""The desirability-prediction (edge-removal) experiment of Section 9.3.

The experiment asks whether a similarity method makes the "right" call based
purely on the evidence in the click graph, without any human judgment:

1. pick a query ``q1`` and two queries ``q2``, ``q3`` that each share at
   least one ad with it;
2. the *desirability* of ``q2`` for ``q1`` is
   ``des(q1, q2) = sum_{i in E(q1) ∩ E(q2)} w(q2, i) / |E(q2)|`` -- computed
   on the full graph, it says which of ``q2``/``q3`` the historical clicks
   favour as a rewrite;
3. delete from the graph every edge connecting ``q1`` to an ad it shares
   with ``q2`` or ``q3`` (the direct evidence), keeping only cases where
   ``q1`` remains connected to both through other paths;
4. run each similarity method on the *remaining* graph and check whether the
   order of ``sim(q1, q2)`` vs ``sim(q1, q3)`` agrees with the order of the
   desirability scores.

Figure 12 reports the fraction of correct predictions over 50 sampled
queries; the paper finds 54% for plain and evidence-based SimRank and 92%
for weighted SimRank.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.similarity_base import QuerySimilarityMethod
from repro.graph.click_graph import ClickGraph, WeightSource
from repro.graph.components import bfs_ball, component_of

__all__ = [
    "desirability",
    "DesirabilityCase",
    "DesirabilityResult",
    "select_desirability_cases",
    "run_desirability_experiment",
]

Node = Hashable


def desirability(
    graph: ClickGraph,
    query: Node,
    candidate: Node,
    source: WeightSource = WeightSource.EXPECTED_CLICK_RATE,
) -> float:
    """``des(q1, q2)``: weight-supported preference for ``candidate`` as a rewrite."""
    candidate_ads = graph.ads_of(candidate)
    if not candidate_ads:
        return 0.0
    common = set(graph.ads_of(query)) & set(candidate_ads)
    return sum(candidate_ads[ad].weight(source) for ad in common) / len(candidate_ads)


@dataclass(frozen=True)
class DesirabilityCase:
    """One test instance: a query, two candidates, and the edges to remove."""

    query: Node
    first_candidate: Node
    second_candidate: Node
    removed_edges: Tuple[Tuple[Node, Node], ...]
    first_desirability: float
    second_desirability: float

    @property
    def preferred(self) -> Node:
        """The candidate the desirability scores favour."""
        if self.first_desirability >= self.second_desirability:
            return self.first_candidate
        return self.second_candidate


@dataclass
class DesirabilityResult:
    """Per-method outcome of the experiment."""

    method_name: str
    correct: int = 0
    total: int = 0
    case_outcomes: List[bool] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0

    @property
    def percentage(self) -> float:
        return 100.0 * self.accuracy


def select_desirability_cases(
    graph: ClickGraph,
    num_cases: int = 50,
    rng: Optional[random.Random] = None,
    source: WeightSource = WeightSource.EXPECTED_CLICK_RATE,
    max_attempts_per_query: int = 20,
) -> List[DesirabilityCase]:
    """Sample up to ``num_cases`` valid experiment instances from a click graph.

    A valid instance requires that, after removing the direct-evidence edges,
    ``q1`` is still connected to both candidates through other paths (so the
    SimRank variants can still produce a score), mirroring the paper's
    selection procedure.
    """
    rng = rng or random.Random(0)
    queries = [query for query in graph.queries() if graph.query_degree(query) > 0]
    rng.shuffle(queries)
    cases: List[DesirabilityCase] = []

    for query in queries:
        if len(cases) >= num_cases:
            break
        partners = _queries_sharing_an_ad(graph, query)
        if len(partners) < 2:
            continue
        for _ in range(max_attempts_per_query):
            first, second = rng.sample(partners, 2)
            case = _build_case(graph, query, first, second, source)
            if case is not None:
                cases.append(case)
                break
    return cases


def _queries_sharing_an_ad(graph: ClickGraph, query: Node) -> List[Node]:
    partners = set()
    for ad in graph.ads_of(query):
        partners.update(graph.queries_of(ad))
    partners.discard(query)
    return sorted(partners, key=repr)


def _build_case(
    graph: ClickGraph,
    query: Node,
    first: Node,
    second: Node,
    source: WeightSource,
) -> Optional[DesirabilityCase]:
    """Construct a case if removing the direct evidence keeps everyone connected."""
    first_common = set(graph.ads_of(query)) & set(graph.ads_of(first))
    second_common = set(graph.ads_of(query)) & set(graph.ads_of(second))
    removed = tuple((query, ad) for ad in sorted(first_common | second_common, key=repr))
    if not removed:
        return None
    if len(removed) >= graph.query_degree(query):
        # Removing all of q1's edges would isolate it entirely.
        return None
    pruned = graph.without_edges(removed)
    reachable_queries, _ = component_of(pruned, query)
    if first not in reachable_queries or second not in reachable_queries:
        return None
    return DesirabilityCase(
        query=query,
        first_candidate=first,
        second_candidate=second,
        removed_edges=removed,
        first_desirability=desirability(graph, query, first, source),
        second_desirability=desirability(graph, query, second, source),
    )


def run_desirability_experiment(
    graph: ClickGraph,
    method_factories: Dict[str, Callable[[], QuerySimilarityMethod]],
    cases: Optional[Sequence[DesirabilityCase]] = None,
    num_cases: int = 50,
    rng: Optional[random.Random] = None,
    source: WeightSource = WeightSource.EXPECTED_CLICK_RATE,
    neighborhood_radius: Optional[int] = None,
    remove_direct_evidence: bool = True,
) -> Dict[str, DesirabilityResult]:
    """Run the edge-removal experiment for several methods.

    ``method_factories`` maps a method name to a zero-argument callable that
    builds a *fresh, unfitted* method instance -- each case needs a fit on
    its own edge-pruned graph.  Returns one :class:`DesirabilityResult` per
    method.  Ties in either the desirability or the similarity ordering count
    as incorrect predictions (the method failed to discriminate).

    ``neighborhood_radius`` optionally restricts each per-case fit to the
    BFS ball of that radius around the target query (SimRank scores after
    ``k`` iterations only depend on nodes within ``2k`` hops, so a radius of
    ``2k`` is exact and smaller radii are fast approximations).

    ``remove_direct_evidence=True`` is the paper's protocol (delete the edges
    connecting the query to its candidates' shared ads before fitting).
    Setting it to False keeps those edges and instead measures how well each
    method's scores agree with the weight evidence they can see directly --
    an ablation isolating the weight-sensitivity mechanism from the
    indirect-recovery part of the task.
    """
    if cases is None:
        cases = select_desirability_cases(graph, num_cases=num_cases, rng=rng, source=source)
    results = {name: DesirabilityResult(method_name=name) for name in method_factories}

    for case in cases:
        pruned = graph.without_edges(case.removed_edges) if remove_direct_evidence else graph
        if neighborhood_radius is not None:
            ball_queries, ball_ads = bfs_ball(pruned, case.query, neighborhood_radius)
            ball_queries.update({case.first_candidate, case.second_candidate})
            pruned = pruned.subgraph(queries=ball_queries, ads=ball_ads)
        desirability_gap = case.first_desirability - case.second_desirability
        for name, factory in method_factories.items():
            method = factory()
            method.fit(pruned)
            first_score = method.query_similarity(case.query, case.first_candidate)
            second_score = method.query_similarity(case.query, case.second_candidate)
            similarity_gap = first_score - second_score
            correct = (
                desirability_gap != 0.0
                and similarity_gap != 0.0
                and (desirability_gap > 0) == (similarity_gap > 0)
            )
            result = results[name]
            result.total += 1
            result.correct += int(correct)
            result.case_outcomes.append(correct)
    return results
