"""Query coverage and rewriting depth (paper Sections 9.4(ii)-(iii)).

* *Query coverage* is the fraction of evaluation queries for which a method
  provides at least one (surviving) rewrite -- Figure 8.
* *Rewriting depth* is the number of rewrites a method provides for a query
  after filtering; Figure 11 reports, for each method, the percentage of
  queries with depth exactly 5, at least 4, at least 3, at least 2 and at
  least 1.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Tuple

from repro.core.rewriter import RewriteList

__all__ = ["coverage_percentage", "depth_histogram", "depth_distribution", "DEPTH_BINS"]

Node = Hashable

#: The x-axis bins of Figure 11: exactly 5, then "at least" 4, 3, 2, 1.
DEPTH_BINS: Tuple[str, ...] = ("5", "4-5", "3-5", "2-5", "1-5")


def coverage_percentage(rewrite_lists: Mapping[Node, RewriteList]) -> float:
    """Percentage of queries with at least one surviving rewrite."""
    if not rewrite_lists:
        return 0.0
    covered = sum(1 for rewrites in rewrite_lists.values() if rewrites.covered)
    return 100.0 * covered / len(rewrite_lists)


def depth_histogram(rewrite_lists: Mapping[Node, RewriteList], max_depth: int = 5) -> List[int]:
    """Count of queries at each exact depth 0..max_depth."""
    histogram = [0] * (max_depth + 1)
    for rewrites in rewrite_lists.values():
        depth = min(rewrites.depth, max_depth)
        histogram[depth] += 1
    return histogram


def depth_distribution(
    rewrite_lists: Mapping[Node, RewriteList], max_depth: int = 5
) -> Dict[str, float]:
    """Figure 11 series: percentage of queries with depth 5, >=4, >=3, >=2, >=1."""
    total = len(rewrite_lists)
    if total == 0:
        return {bin_name: 0.0 for bin_name in DEPTH_BINS}
    histogram = depth_histogram(rewrite_lists, max_depth=max_depth)
    distribution: Dict[str, float] = {}
    distribution[str(max_depth)] = 100.0 * histogram[max_depth] / total
    for lower in range(max_depth - 1, 0, -1):
        bin_name = f"{lower}-{max_depth}"
        count = sum(histogram[lower:])
        distribution[bin_name] = 100.0 * count / total
    return distribution
